"""Replay a workload trace through one execution path.

Four paths replay the *same* trace, each rebuilding a private copy of
the trace's starting graph, and every op produces one canonical JSON
payload (see below).  Two replays of one trace are *conformant* when
their payloads are textually identical at every step — which is the
property the differential oracle (:mod:`repro.workload.oracle`) checks
across all four:

``serial``
    The from-scratch rebuild oracle: mutations apply to a plain
    :class:`~repro.model.entity_graph.EntityGraph` and every read op
    builds a **fresh** :class:`~repro.engine.PreviewEngine` (new schema
    graph, new scoring context, empty caches).  Nothing is ever reused,
    so nothing can ever be stale — the ground truth the cached paths
    must match.

``incremental``
    One long-lived :class:`~repro.ext.incremental.IncrementalEntityGraph`
    and its warm engine: mutations flow through the delta pipeline
    (type-scoped invalidation, patched scoring contexts, surviving memo
    entries).  After every op the engine's ``cache_info()`` accounting
    is checked (counters monotonic and non-negative, generation in step
    with the graph, each read accounted as exactly one hit-or-miss per
    query); the replay finishes with a full
    ``verify_against_rescan()``.

``sharded``
    The incremental path with the qualifying-subset evaluation sharded
    across a live :class:`~repro.parallel.ShardedExecutor` process pool
    (``jobs`` workers), the way ``repro-preview --jobs`` runs.

``serve``
    The real socket path: a :class:`~repro.serve.PreviewService` over
    the same starting graph, driven through one blocking
    :class:`~repro.serve.ServeClient` *per trace client id*, in trace
    order.  Response caching, coalescing keys, admission and the
    JSON-line protocol are all in the loop; ``stats`` ops (and the end
    of the replay) sanity-check the host's response-cache/coalescer
    counters.

``replicated``
    The full replication topology (:mod:`repro.replicate`): one writer
    host, two read replicas fed by the live delta stream, and a
    consistent-hashing router in front — four separate services on
    real sockets.  Mutations go to the writer; every read carries the
    generation token of the last acknowledged mutation
    (read-your-writes), so replicas block until caught up and the
    payloads match the serial oracle byte-for-byte at every step.
    Reads also carry the op's replica ``affinity`` (falling back to
    its client id), exercising the router's per-client pinning.

Canonical payloads per op (digested with
:func:`~repro.workload.trace.payload_digest`):

* ``mutate`` — ``{"kind": ..., "generation": <post-mutation generation>}``
  (generations agree across paths because every path starts from the
  identical generated graph and applies the identical mutations);
* ``preview`` — ``{"result": <serialized DiscoveryResult> | null}``
  (null = infeasible);
* ``sweep`` — ``{"results": [... | null]}`` positionally aligned;
* ``stats`` — no payload (path-specific; sanity-checked, never diffed).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.serialize import result_to_dict
from ..datasets.freebase_like import generate_domain
from ..datasets.loader import graph_fingerprint
from ..engine import PreviewEngine
from ..exceptions import (
    InfeasiblePreviewError,
    ServeRequestError,
    WorkloadError,
)
from ..ext.incremental import IncrementalEntityGraph
from ..model.ids import RelationshipTypeId
from ..serve.host import parse_mutation, parse_query, parse_sweep
from .trace import TraceOp, WorkloadTrace, payload_digest

#: The five execution paths the differential oracle compares.
REPLAY_PATHS = ("serial", "incremental", "sharded", "serve", "replicated")


@dataclass
class ReplayResult:
    """What one path produced replaying one trace."""

    path: str
    #: Per-op payload digests, positionally aligned with the trace
    #: (None for ``stats`` ops, which have no comparable payload).
    digests: Tuple[Optional[str], ...]
    seconds: float
    ops: int
    reads: int
    mutations: int
    #: ``(op_index, expected, actual)`` for every recorded digest the
    #: replay failed to reproduce (empty when the trace has no digests
    #: or verification was off).
    digest_mismatches: List[Tuple[int, str, str]] = field(default_factory=list)
    #: Path-specific closing stats (cache_info, service counters, ...).
    stats: Dict[str, Any] = field(default_factory=dict)
    #: Full payloads, only when requested (memory-heavy on long traces).
    payloads: Optional[List[Any]] = None

    @property
    def ops_per_second(self) -> float:
        """Replay throughput (all ops, including stats probes)."""
        return self.ops / self.seconds if self.seconds > 0 else float("inf")


def _starting_graph(trace: WorkloadTrace, store: Optional[str] = None):
    """The trace's starting graph, fingerprint-checked.

    With ``store`` the graph cold-opens from a ``.rgs`` binary store
    (:func:`repro.store.open_store`) instead of regenerating the domain
    — O(header) plus materialization, no generator in the loop.  Either
    way the graph the replay starts from must carry the fingerprint the
    trace was recorded against.

    Raises
    ------
    WorkloadError
        When the trace pins a fingerprint and the regenerated domain
        (or the stored graph) no longer matches it — replaying would
        only produce a wall of payload mismatches.
    """
    if store is not None:
        from ..store import open_store

        with open_store(store) as store_file:
            if (
                trace.fingerprint is not None
                and store_file.fingerprint != trace.fingerprint
            ):
                raise WorkloadError(
                    f"dataset mismatch: store {store!s} fingerprints "
                    f"{store_file.fingerprint} but the trace was recorded "
                    f"against {trace.fingerprint} — rebuild the store from "
                    "the trace's domain (or re-record the trace)"
                )
            return store_file.entity_graph()
    graph = generate_domain(trace.domain, scale=trace.scale, seed=trace.seed)
    if trace.fingerprint is not None:
        actual = graph_fingerprint(graph)
        if actual != trace.fingerprint:
            raise WorkloadError(
                f"dataset mismatch: regenerated {trace.domain!r} "
                f"(scale={trace.scale}, seed={trace.seed}) fingerprints "
                f"{actual} but the trace was recorded against "
                f"{trace.fingerprint} — the domain generator drifted; "
                "re-record the trace"
            )
    return graph


def _apply_mutation(graph, params: Dict[str, Any]) -> int:
    """Apply one serve-shaped mutation to ``graph``; new generation.

    ``graph`` is an :class:`EntityGraph` or an
    :class:`IncrementalEntityGraph` — both expose the same mutator pair.
    """
    kind, fields = parse_mutation(params)
    if kind == "entity":
        entity, types = fields
        graph.add_entity(entity, types)
    else:
        source, target, name, source_type, target_type = fields
        graph.add_relationship(
            source,
            target,
            RelationshipTypeId(
                name=name, source_type=source_type, target_type=target_type
            ),
        )
    return graph.generation


class _EngineAccounting:
    """Per-op ``cache_info()`` sanity checks for engine-backed paths."""

    MONOTONIC = ("hits", "misses", "evicted", "retained", "invalidations")

    def __init__(self, path: str) -> None:
        self._path = path
        self._previous: Optional[Dict[str, int]] = None

    def check(self, engine: PreviewEngine, graph, queries_answered: int) -> None:
        """Validate the engine's counters after one op.

        Raises
        ------
        WorkloadError
            On any accounting violation: a counter going backwards or
            negative, the cache generation falling out of step with the
            graph, or a read not accounted as exactly one hit-or-miss
            per query.
        """
        info = engine.cache_info()
        for name, value in info.items():
            # Non-numeric entries (kernel_backend) carry no accounting.
            if isinstance(value, int) and value < 0:
                raise WorkloadError(
                    f"{self._path}: cache_info[{name!r}] went negative: {value}"
                )
        if info["generation"] != graph.generation:
            raise WorkloadError(
                f"{self._path}: engine generation {info['generation']} is out "
                f"of step with graph generation {graph.generation}"
            )
        if self._previous is not None:
            for name in self.MONOTONIC:
                if info[name] < self._previous[name]:
                    raise WorkloadError(
                        f"{self._path}: cache_info[{name!r}] went backwards "
                        f"({self._previous[name]} -> {info[name]})"
                    )
            answered = (info["hits"] + info["misses"]) - (
                self._previous["hits"] + self._previous["misses"]
            )
            if answered != queries_answered:
                raise WorkloadError(
                    f"{self._path}: {queries_answered} queries were answered "
                    f"but hits+misses moved by {answered}"
                )
        self._previous = info


class _SerialReplay:
    """The from-scratch rebuild oracle (fresh engine per read)."""

    path = "serial"

    def __init__(self, trace: WorkloadTrace, store: Optional[str] = None) -> None:
        self._trace = trace
        self._graph = _starting_graph(trace, store)

    def _fresh_engine(self) -> PreviewEngine:
        return PreviewEngine(
            self._graph,
            key_scorer=self._trace.key_scorer,
            nonkey_scorer=self._trace.nonkey_scorer,
        )

    def apply(self, op: TraceOp) -> Optional[Dict[str, Any]]:
        if op.op == "mutate":
            generation = _apply_mutation(self._graph, op.params)
            return {"kind": op.params.get("kind"), "generation": generation}
        if op.op == "preview":
            query = parse_query(op.params)
            try:
                result = self._fresh_engine().run(query)
            except InfeasiblePreviewError:
                return {"result": None}
            return {"result": result_to_dict(result)}
        if op.op == "sweep":
            queries = parse_sweep(op.params)
            results = self._fresh_engine().sweep(queries, skip_infeasible=True)
            return {
                "results": [
                    None if result is None else result_to_dict(result)
                    for result in results
                ]
            }
        return None  # stats: nothing to check on a from-scratch path

    def finish(self) -> Dict[str, Any]:
        return {"generation": self._graph.generation}

    def close(self) -> None:
        pass


class _IncrementalReplay:
    """One live graph + warm engine; optional sharded executor."""

    def __init__(
        self, trace: WorkloadTrace, jobs: int = 1, store: Optional[str] = None
    ) -> None:
        self.path = "sharded" if jobs > 1 else "incremental"
        self._trace = trace
        self._graph = IncrementalEntityGraph(base=_starting_graph(trace, store))
        self._engine = self._graph.engine(trace.key_scorer, trace.nonkey_scorer)
        self._accounting = _EngineAccounting(self.path)
        if jobs > 1:
            from ..parallel import ShardedExecutor

            self._executor = ShardedExecutor(jobs)
        else:
            self._executor = None

    def apply(self, op: TraceOp) -> Optional[Dict[str, Any]]:
        if op.op == "mutate":
            generation = _apply_mutation(self._graph, op.params)
            self._accounting.check(self._engine, self._graph, queries_answered=0)
            return {"kind": op.params.get("kind"), "generation": generation}
        if op.op == "preview":
            query = parse_query(op.params)
            try:
                result = self._engine.run(query, executor=self._executor)
                payload = {"result": result_to_dict(result)}
            except InfeasiblePreviewError:
                payload = {"result": None}
            self._accounting.check(self._engine, self._graph, queries_answered=1)
            return payload
        if op.op == "sweep":
            queries = parse_sweep(op.params)
            results = self._engine.sweep(
                queries, skip_infeasible=True, executor=self._executor
            )
            self._accounting.check(
                self._engine, self._graph, queries_answered=len(queries)
            )
            return {
                "results": [
                    None if result is None else result_to_dict(result)
                    for result in results
                ]
            }
        # stats probe: the accounting check *is* the payload.
        self._accounting.check(self._engine, self._graph, queries_answered=0)
        return None

    def finish(self) -> Dict[str, Any]:
        if not self._graph.verify_against_rescan():
            raise WorkloadError(
                f"{self.path}: incremental aggregates diverged from a full "
                "rescan after replay"
            )
        info = self._engine.cache_info()
        info["rescan_ok"] = True
        return info

    def close(self) -> None:
        if self._executor is not None:
            self._executor.close()
            self._executor = None


class _ServeReplay:
    """The real socket path: service + one connection per client id."""

    path = "serve"

    def __init__(self, trace: WorkloadTrace, store: Optional[str] = None) -> None:
        from ..serve import EngineHost, PreviewService, ServeClient, run_in_background

        self._trace = trace
        self._client_factory = ServeClient
        self._host = EngineHost(
            trace.domain,
            _starting_graph(trace, store),
            key_scorer=trace.key_scorer,
            nonkey_scorer=trace.nonkey_scorer,
        )
        self._service = PreviewService({trace.domain: self._host})
        self._server = run_in_background(self._service)
        self._clients: Dict[int, Any] = {}
        self._last_generation: Optional[int] = None

    def _client(self, client_id: int):
        client = self._clients.get(client_id)
        if client is None:
            client = self._client_factory(port=self._server.port, timeout=120.0)
            self._clients[client_id] = client
        return client

    def _check_stats(self, stats: Dict[str, Any]) -> None:
        """Sanity-check one ``stats`` payload from the service.

        Raises
        ------
        WorkloadError
            When a counter is negative, the response cache exceeds its
            bound, or the engine generation moves backwards.
        """
        from ..serve import EngineHost

        dataset = stats["datasets"][0]
        for group in ("engine", "coalescer", "responses"):
            for name, value in dataset[group].items():
                if isinstance(value, int) and value < 0:
                    raise WorkloadError(
                        f"serve: {group}.{name} went negative: {value}"
                    )
        if dataset["responses"]["entries"] > EngineHost.RESPONSE_CACHE_SIZE:
            raise WorkloadError(
                f"serve: response cache holds {dataset['responses']['entries']} "
                f"entries, over the {EngineHost.RESPONSE_CACHE_SIZE} bound"
            )
        generation = dataset["engine"]["generation"]
        if self._last_generation is not None and generation < self._last_generation:
            raise WorkloadError(
                "serve: engine generation went backwards "
                f"({self._last_generation} -> {generation})"
            )
        self._last_generation = generation
        service = stats["service"]
        if service["ok"] + service["errors"] > service["requests"]:
            raise WorkloadError(
                "serve: ok+errors exceeds total requests "
                f"({service['ok']}+{service['errors']} > {service['requests']})"
            )

    def apply(self, op: TraceOp) -> Optional[Dict[str, Any]]:
        client = self._client(op.client)
        if op.op == "mutate":
            return client.call("mutate", op.params)
        if op.op == "preview":
            try:
                result = client.call("preview", op.params)
            except ServeRequestError as exc:
                if exc.code != "infeasible":
                    raise
                return {"result": None}
            return {"result": result["result"]}
        if op.op == "sweep":
            result = client.call("sweep", op.params)
            return {"results": result["results"]}
        self._check_stats(client.stats())
        return None

    def finish(self) -> Dict[str, Any]:
        stats = self._client(0).stats()
        self._check_stats(stats)
        return {
            "service": stats["service"],
            "dataset": stats["datasets"][0],
        }

    def close(self) -> None:
        for client in self._clients.values():
            client.close()
        self._clients.clear()
        self._server.stop()


class _ReplicatedReplay:
    """The replication topology: writer + replicas + router, on sockets."""

    path = "replicated"

    #: Read replicas behind the router (the conformance floor is two —
    #: a single replica cannot exercise cross-replica ordering).
    REPLICAS = 2

    def __init__(self, trace: WorkloadTrace, store: Optional[str] = None) -> None:
        from ..replicate import (
            ReplicaHost,
            ReplicaService,
            RouterService,
            WriterHost,
            WriterService,
        )
        from ..serve import ServeClient, run_in_background

        self._trace = trace
        self._client_factory = ServeClient
        self._writer_host = WriterHost(
            trace.domain,
            _starting_graph(trace, store),
            key_scorer=trace.key_scorer,
            nonkey_scorer=trace.nonkey_scorer,
        )
        self._writer = run_in_background(
            WriterService({trace.domain: self._writer_host})
        )
        self._replica_hosts = []
        self._replicas = []
        for _ in range(self.REPLICAS):
            host = ReplicaHost(
                trace.domain,
                _starting_graph(trace, store),
                key_scorer=trace.key_scorer,
                nonkey_scorer=trace.nonkey_scorer,
            )
            self._replica_hosts.append(host)
            self._replicas.append(
                run_in_background(
                    ReplicaService(
                        {trace.domain: host},
                        upstream=("127.0.0.1", self._writer.port),
                    )
                )
            )
        self._router = run_in_background(
            RouterService(
                writer=("127.0.0.1", self._writer.port),
                replicas=[
                    ("127.0.0.1", server.port) for server in self._replicas
                ],
                datasets=[trace.domain],
            )
        )
        self._clients: Dict[int, Any] = {}
        #: The read-your-writes token: the generation of the last
        #: acknowledged mutation.  Global (not per-client) — the trace
        #: order is the total order every path linearizes to, so *any*
        #: read after a write must observe it regardless of client.
        self._token: Optional[int] = None

    def _client(self, client_id: int):
        client = self._clients.get(client_id)
        if client is None:
            client = self._client_factory(port=self._router.port, timeout=120.0)
            self._clients[client_id] = client
        return client

    def _read_params(self, op: TraceOp) -> Dict[str, Any]:
        params = dict(op.params)
        if self._token is not None:
            params["min_generation"] = self._token
        params["affinity"] = op.affinity if op.affinity is not None else op.client
        return params

    def _check_stats(self, stats: Dict[str, Any]) -> None:
        """Sanity-check one router ``stats`` payload.

        Raises
        ------
        WorkloadError
            When the topology is missing replicas, a replica reports
            negative lag accounting, or a replica generation overtakes
            the writer's.
        """
        replicas = stats.get("replicas") or []
        if len(replicas) != self.REPLICAS:
            raise WorkloadError(
                f"replicated: router reports {len(replicas)} replicas, "
                f"expected {self.REPLICAS}"
            )
        writer_generation = stats.get("writer_generation")
        for entry in replicas:
            if "error" in entry:
                raise WorkloadError(
                    f"replicated: replica {entry.get('backend')} unreachable: "
                    f"{entry['error']}"
                )
            for dataset in entry.get("datasets") or []:
                replication = dataset.get("replication") or {}
                if replication.get("role") != "replica":
                    raise WorkloadError(
                        f"replicated: backend {entry.get('backend')} reports "
                        f"role {replication.get('role')!r}"
                    )
                lag = replication.get("lag")
                if not isinstance(lag, int) or lag < 0:
                    raise WorkloadError(
                        f"replicated: replica lag must be a non-negative "
                        f"integer, got {lag!r}"
                    )
                generation = replication.get("generation")
                if (
                    isinstance(writer_generation, int)
                    and isinstance(generation, int)
                    and generation > writer_generation
                ):
                    raise WorkloadError(
                        f"replicated: replica generation {generation} is ahead "
                        f"of the writer generation {writer_generation}"
                    )

    def apply(self, op: TraceOp) -> Optional[Dict[str, Any]]:
        client = self._client(op.client)
        if op.op == "mutate":
            payload = client.call("mutate", op.params)
            self._token = payload["generation"]
            return payload
        if op.op == "preview":
            try:
                result = client.call("preview", self._read_params(op))
            except ServeRequestError as exc:
                if exc.code != "infeasible":
                    raise
                return {"result": None}
            return {"result": result["result"]}
        if op.op == "sweep":
            result = client.call("sweep", self._read_params(op))
            return {"results": result["results"]}
        self._check_stats(client.stats())
        return None

    def finish(self) -> Dict[str, Any]:
        stats = self._client(0).stats()
        self._check_stats(stats)
        return {
            "service": stats["service"],
            "writer_generation": stats.get("writer_generation"),
            "replicas": stats.get("replicas"),
        }

    def close(self) -> None:
        for client in self._clients.values():
            client.close()
        self._clients.clear()
        self._router.stop()
        for server in self._replicas:
            server.stop()
        self._writer.stop()


def _make_replayer(
    trace: WorkloadTrace, path: str, jobs: int, store: Optional[str] = None
):
    if path == "serial":
        return _SerialReplay(trace, store=store)
    if path == "incremental":
        return _IncrementalReplay(trace, jobs=1, store=store)
    if path == "sharded":
        if jobs < 2:
            raise WorkloadError(
                f"the sharded path needs jobs >= 2, got {jobs} "
                "(use the incremental path for a serial warm engine)"
            )
        return _IncrementalReplay(trace, jobs=jobs, store=store)
    if path == "serve":
        return _ServeReplay(trace, store=store)
    if path == "replicated":
        return _ReplicatedReplay(trace, store=store)
    raise WorkloadError(
        f"unknown replay path {path!r}; available: {', '.join(REPLAY_PATHS)}"
    )


def replay_trace(
    trace: WorkloadTrace,
    path: str = "incremental",
    jobs: int = 2,
    verify_digests: bool = False,
    keep_payloads: bool = False,
    store: Optional[str] = None,
) -> ReplayResult:
    """Replay ``trace`` through one path and digest every payload.

    Parameters
    ----------
    trace:
        The trace to replay (its header names the starting graph).
    path:
        One of :data:`REPLAY_PATHS`.
    jobs:
        Worker processes for the ``sharded`` path (ignored elsewhere).
    verify_digests:
        Compare each computed digest against the digest recorded on the
        trace op (when present); mismatches land in
        :attr:`ReplayResult.digest_mismatches`.
    keep_payloads:
        Keep the full payload objects on the result (memory-heavy).
    store:
        Optional ``.rgs`` binary store path the starting graph is
        opened from instead of regenerating the trace's domain
        (fingerprint-checked against the trace header).

    Returns
    -------
    ReplayResult
        Digests, timing, accounting stats.

    Raises
    ------
    WorkloadError
        For an unknown path or an accounting violation mid-replay.
    """
    replayer = _make_replayer(trace, path, jobs, store=store)
    digests: List[Optional[str]] = []
    payloads: List[Any] = [] if keep_payloads else None
    mismatches: List[Tuple[int, str, str]] = []
    reads = 0
    mutations = 0
    start = time.perf_counter()
    try:
        for index, op in enumerate(trace.ops):
            payload = replayer.apply(op)
            if op.op == "mutate":
                mutations += 1
            elif op.op in ("preview", "sweep"):
                reads += 1
            digest = None if payload is None else payload_digest(payload)
            digests.append(digest)
            if keep_payloads:
                payloads.append(payload)
            if (
                verify_digests
                and op.digest is not None
                and digest is not None
                and digest != op.digest
            ):
                mismatches.append((index, op.digest, digest))
        seconds = time.perf_counter() - start
        stats = replayer.finish()
    finally:
        replayer.close()
    return ReplayResult(
        path=path,
        digests=tuple(digests),
        seconds=seconds,
        ops=len(trace.ops),
        reads=reads,
        mutations=mutations,
        digest_mismatches=mismatches,
        stats=stats,
        payloads=payloads,
    )


def record_digests(trace: WorkloadTrace, path: str = "incremental") -> WorkloadTrace:
    """``trace`` with payload digests embedded (recorded via ``path``).

    The recorder half of the record/replay pair: replay once, stamp
    each diffable op with the digest of the payload it produced, and
    return the stamped trace ready for :func:`WorkloadTrace.dump`.
    Conformance of the recording path itself is established separately
    by the differential oracle.
    """
    result = replay_trace(trace, path=path, jobs=1 if path != "sharded" else 2)
    return trace.with_digests(list(result.digests))
