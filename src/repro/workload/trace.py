"""The versioned JSONL workload-trace format.

A *workload trace* is one realistic session against a served dataset,
written down: a header line naming the dataset (a built-in domain plus
its generation parameters, so every replayer can rebuild the identical
starting graph) followed by one line per operation, in arrival order.
Operation lines reuse the serving layer's wire-params shapes verbatim —
a trace op's ``params`` dict is exactly what a
:class:`~repro.serve.ServeClient` would put in a request frame, and the
direct replayers parse it with the same
:func:`~repro.serve.parse_query`/:func:`~repro.serve.parse_mutation`
functions the service uses — so one format drives both the in-process
engines and the real socket path.

.. code-block:: text

    {"kind": "repro-workload", "version": 1, "dataset": {...}, ...}
    {"op": "mutate", "client": 0, "params": {"kind": "entity", ...}}
    {"op": "preview", "client": 1, "params": {"k": 2, "n": 5}, "digest": "sha256:..."}
    {"op": "stats", "client": 0}

Each op line may carry a ``digest`` — the SHA-256 of the *canonical
payload JSON* the op produced when it was recorded (see
:func:`payload_digest`).  A replayer that reproduces every digest has
reproduced the recorded payloads byte-for-byte; the differential oracle
(:mod:`repro.workload.oracle`) additionally compares the digests across
execution paths at every step.

The format is versioned: :data:`TRACE_VERSION` bumps on any
incompatible change, and :func:`WorkloadTrace.loads` rejects traces it
cannot faithfully replay.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

from ..exceptions import WorkloadError

#: Identifies a trace file's first line (guards against feeding the
#: replayer an arbitrary JSONL file).
TRACE_KIND = "repro-workload"

#: Current trace-format version; bumped on incompatible changes.
TRACE_VERSION = 1

#: Operations a trace may contain.  ``preview``/``sweep``/``mutate``
#: carry serve-shaped ``params``; ``stats`` is a zero-param accounting
#: probe whose payload is *path-specific* and therefore sanity-checked
#: rather than diffed (see :mod:`repro.workload.replay`).
TRACE_OPS = ("mutate", "preview", "sweep", "stats")


def canonical_payload(payload: Any) -> str:
    """The canonical JSON text of one op payload.

    Compact separators and sorted keys make equal payloads textually
    identical, so digest equality means byte-identical payloads.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def payload_digest(payload: Any) -> str:
    """``sha256:<hex>`` over :func:`canonical_payload` of ``payload``."""
    digest = hashlib.sha256(canonical_payload(payload).encode("utf-8"))
    return f"sha256:{digest.hexdigest()}"


@dataclass(frozen=True)
class TraceOp:
    """One operation of a workload trace.

    Attributes
    ----------
    op:
        Member of :data:`TRACE_OPS`.
    params:
        The serve-shaped parameter dict (empty for ``stats``).
    client:
        Logical client id (drives the serve replayer's
        connection-per-client mapping; the trace order is the total
        order regardless).
    affinity:
        Replica-affinity hint for replicated deployments: the router
        pins ops sharing an affinity value to the same replica, which
        is what makes cross-client read-after-write ordering visible
        (two clients on different replicas observe a write at
        different times unless a generation token is used).  None
        means unpinned; replayers fall back to ``client``.
    digest:
        Expected payload digest recorded at capture time, or None.
    """

    op: str
    params: Dict[str, Any] = field(default_factory=dict)
    client: int = 0
    digest: Optional[str] = None
    affinity: Optional[int] = None

    def to_record(self) -> Dict[str, Any]:
        """The JSON record of this op (one trace line)."""
        record: Dict[str, Any] = {"op": self.op, "client": self.client}
        if self.params:
            record["params"] = self.params
        if self.affinity is not None:
            record["affinity"] = self.affinity
        if self.digest is not None:
            record["digest"] = self.digest
        return record

    @classmethod
    def from_record(cls, record: Dict[str, Any], line: int) -> "TraceOp":
        """Validate one decoded op line into a :class:`TraceOp`.

        Raises
        ------
        WorkloadError
            For an unknown op or malformed field (with the 1-based line
            number, so a hand-edited trace fails with a usable message).
        """
        op = record.get("op")
        if op not in TRACE_OPS:
            raise WorkloadError(
                f"trace line {line}: unknown op {op!r} "
                f"(expected one of {', '.join(TRACE_OPS)})"
            )
        params = record.get("params", {})
        if not isinstance(params, dict):
            raise WorkloadError(f"trace line {line}: 'params' must be an object")
        client = record.get("client", 0)
        if not isinstance(client, int) or isinstance(client, bool) or client < 0:
            raise WorkloadError(
                f"trace line {line}: 'client' must be a non-negative integer"
            )
        affinity = record.get("affinity")
        if affinity is not None and (
            not isinstance(affinity, int)
            or isinstance(affinity, bool)
            or affinity < 0
        ):
            raise WorkloadError(
                f"trace line {line}: 'affinity' must be a non-negative integer"
            )
        digest = record.get("digest")
        if digest is not None and not isinstance(digest, str):
            raise WorkloadError(f"trace line {line}: 'digest' must be a string")
        return cls(
            op=op, params=params, client=client, digest=digest, affinity=affinity
        )


@dataclass(frozen=True)
class WorkloadTrace:
    """One recorded workload: the dataset identity plus the op sequence.

    Attributes
    ----------
    domain, scale, seed:
        :func:`~repro.datasets.generate_domain` parameters of the
        starting graph — every replay path rebuilds a private identical
        copy from these, so mutations in the trace apply cleanly.
    key_scorer, nonkey_scorer:
        Scoring measures every replay path uses.
    scenario:
        Free-form provenance of the generator (scenario name and knobs);
        not consumed by replay.
    ops:
        The operations, in arrival order.
    """

    domain: str
    scale: int
    seed: int
    ops: Tuple[TraceOp, ...]
    key_scorer: str = "coverage"
    nonkey_scorer: str = "coverage"
    scenario: Dict[str, Any] = field(default_factory=dict)
    #: Content digest of the starting graph
    #: (:func:`~repro.datasets.graph_fingerprint`); replayers verify
    #: their regenerated copy against it before replaying, so a drifted
    #: domain generator fails as a dataset mismatch, not as opaque
    #: payload divergence.  None = unpinned (fingerprint check skipped).
    fingerprint: Optional[str] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def mutation_count(self) -> int:
        """How many ops are mutations."""
        return sum(1 for op in self.ops if op.op == "mutate")

    @property
    def read_count(self) -> int:
        """How many ops are previews or sweeps."""
        return sum(1 for op in self.ops if op.op in ("preview", "sweep"))

    def has_digests(self) -> bool:
        """True when every diffable op carries a recorded digest."""
        return all(
            op.digest is not None for op in self.ops if op.op != "stats"
        )

    def with_digests(self, digests: Sequence[Optional[str]]) -> "WorkloadTrace":
        """A copy whose ops carry ``digests`` (positionally aligned).

        Raises
        ------
        WorkloadError
            If ``digests`` is not aligned with the op list.
        """
        if len(digests) != len(self.ops):
            raise WorkloadError(
                f"digest list has {len(digests)} entries for {len(self.ops)} ops"
            )
        ops = tuple(
            replace(op, digest=digest) for op, digest in zip(self.ops, digests)
        )
        return replace(self, ops=ops)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def header(self) -> Dict[str, Any]:
        """The header record (first JSONL line) of this trace."""
        dataset: Dict[str, Any] = {
            "domain": self.domain,
            "scale": self.scale,
            "seed": self.seed,
        }
        if self.fingerprint is not None:
            dataset["fingerprint"] = self.fingerprint
        return {
            "kind": TRACE_KIND,
            "version": TRACE_VERSION,
            "dataset": dataset,
            "scorers": {
                "key": self.key_scorer,
                "nonkey": self.nonkey_scorer,
            },
            "scenario": self.scenario,
            "ops": len(self.ops),
        }

    def dumps(self) -> str:
        """The full JSONL text (header line + one line per op)."""
        lines = [canonical_payload(self.header())]
        lines.extend(canonical_payload(op.to_record()) for op in self.ops)
        return "\n".join(lines) + "\n"

    def dump(self, path) -> None:
        """Write the JSONL text to ``path``.

        Raises
        ------
        WorkloadError
            When the file cannot be written (bad directory, permission)
            — symmetric with :meth:`load`, so CLI callers keep their
            clean ``error: ...`` contract.
        """
        file_path = Path(path)
        try:
            file_path.write_text(self.dumps(), encoding="utf-8")
        except OSError as exc:
            raise WorkloadError(f"cannot write trace {file_path}: {exc}") from exc

    @classmethod
    def loads(cls, text: str) -> "WorkloadTrace":
        """Parse and validate one JSONL trace.

        Raises
        ------
        WorkloadError
            For an empty document, a non-trace header, an unsupported
            version, or any malformed line.
        """
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise WorkloadError("trace is empty (no header line)")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise WorkloadError(f"trace header is not JSON: {exc}") from exc
        if not isinstance(header, dict) or header.get("kind") != TRACE_KIND:
            raise WorkloadError(
                f"not a workload trace (header 'kind' must be {TRACE_KIND!r})"
            )
        version = header.get("version")
        if version != TRACE_VERSION:
            raise WorkloadError(
                f"unsupported trace version {version!r} "
                f"(this build replays version {TRACE_VERSION})"
            )
        dataset = header.get("dataset")
        if not isinstance(dataset, dict):
            raise WorkloadError("trace header lacks a 'dataset' object")
        try:
            domain = dataset["domain"]
            scale = dataset["scale"]
            seed = dataset["seed"]
        except KeyError as exc:
            raise WorkloadError(f"trace dataset lacks {exc}") from exc
        if not isinstance(domain, str):
            raise WorkloadError("trace dataset 'domain' must be a string")
        for name, value in (("scale", scale), ("seed", seed)):
            if not isinstance(value, int) or isinstance(value, bool):
                raise WorkloadError(f"trace dataset {name!r} must be an integer")
        fingerprint = dataset.get("fingerprint")
        if fingerprint is not None and not isinstance(fingerprint, str):
            raise WorkloadError("trace dataset 'fingerprint' must be a string")
        scorers = header.get("scorers", {})
        if not isinstance(scorers, dict):
            raise WorkloadError("trace header 'scorers' must be an object")
        scenario = header.get("scenario", {})
        if not isinstance(scenario, dict):
            raise WorkloadError("trace header 'scenario' must be an object")
        ops = []
        for index, text_line in enumerate(lines[1:], start=2):
            try:
                record = json.loads(text_line)
            except json.JSONDecodeError as exc:
                raise WorkloadError(f"trace line {index} is not JSON: {exc}") from exc
            if not isinstance(record, dict):
                raise WorkloadError(f"trace line {index} must be a JSON object")
            ops.append(TraceOp.from_record(record, index))
        declared = header.get("ops")
        if isinstance(declared, int) and declared != len(ops):
            # A truncated file would otherwise replay (and "conform")
            # vacuously on whatever prefix survived.
            raise WorkloadError(
                f"trace is truncated or padded: header declares {declared} "
                f"ops but {len(ops)} op lines are present"
            )
        return cls(
            domain=domain,
            scale=scale,
            seed=seed,
            ops=tuple(ops),
            key_scorer=scorers.get("key", "coverage"),
            nonkey_scorer=scorers.get("nonkey", "coverage"),
            scenario=scenario,
            fingerprint=fingerprint,
        )

    @classmethod
    def load(cls, path) -> "WorkloadTrace":
        """Read and parse the JSONL trace at ``path``.

        Raises
        ------
        WorkloadError
            When the file does not exist or fails validation.
        """
        file_path = Path(path)
        try:
            text = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            raise WorkloadError(f"cannot read trace {file_path}: {exc}") from exc
        return cls.loads(text)


def iter_trace_records(trace: WorkloadTrace) -> Iterable[Dict[str, Any]]:
    """Yield the JSON records of ``trace`` (header first), for tooling."""
    yield trace.header()
    for op in trace.ops:
        yield op.to_record()
