"""``repro.workload`` — workload traces and differential conformance.

The serving stack now has four ways to answer the same preview query —
a from-scratch engine, a warm incremental engine, a process-sharded
engine, and the JSON-line socket service — and the paper's contract is
that all four are *bit-identical* under any mix of reads and writes.
This package makes that contract executable:

* :mod:`~repro.workload.trace` — the versioned JSONL trace format: one
  header line naming the dataset, one line per operation in serve-wire
  shape, optional per-op payload digests;
* :mod:`~repro.workload.generator` — seeded scenario generation
  (Zipf-skewed hot queries, mutation bursts, structural-change spikes,
  multi-client interleavings) producing deterministic traces;
* :mod:`~repro.workload.replay` — one replayer per execution path,
  each emitting canonical payloads and checking its own cache/counter
  accounting at every step;
* :mod:`~repro.workload.oracle` — the differential oracle: replay one
  trace through every path, diff the payload digests op by op, and
  verify recorded digests so a committed golden trace pins behavior
  across time.

CLI: ``repro-preview workload record|replay|run|diff`` (see
``docs/workloads.md``).
"""

from .generator import SCENARIOS, ScenarioSpec, generate_trace, scenario
from .oracle import format_report, run_conformance
from .replay import REPLAY_PATHS, ReplayResult, record_digests, replay_trace
from .trace import (
    TRACE_OPS,
    TRACE_VERSION,
    TraceOp,
    WorkloadTrace,
    canonical_payload,
    payload_digest,
)

__all__ = [
    "REPLAY_PATHS",
    "SCENARIOS",
    "ScenarioSpec",
    "TRACE_OPS",
    "TRACE_VERSION",
    "TraceOp",
    "ReplayResult",
    "WorkloadTrace",
    "canonical_payload",
    "format_report",
    "generate_trace",
    "payload_digest",
    "record_digests",
    "replay_trace",
    "run_conformance",
    "scenario",
]
