"""In-flight request coalescing: one computation serves every identical waiter.

Under preview-serving traffic the hottest request is the *same* request:
many clients asking for the same ``(dataset, query)`` at the same
moment.  The engine's memo cache already makes the second *sequential*
ask O(1) — but concurrent identical asks would each miss the (not yet
populated) memo and compute redundantly.  :class:`RequestCoalescer`
closes that gap: the first arrival (the *leader*) starts the
computation as a task keyed by ``(dataset, query, generation)``, and
every later arrival with the same key *joins* the in-flight task
instead of starting its own.  All waiters receive the leader's result
object — bit-identical by construction, not merely equal.

The shared task is awaited through :func:`asyncio.shield`, so one
waiter's cancellation (per-request timeout, client disconnect) never
kills the computation other waiters — or the engine's memo cache —
still want.  Generation is part of the key: a request admitted after a
mutation never joins a pre-mutation computation.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict, Hashable


class RequestCoalescer:
    """Deduplicate identical in-flight computations by key."""

    def __init__(self) -> None:
        self._inflight: Dict[Hashable, asyncio.Task] = {}
        self._leaders = 0
        self._coalesced = 0

    @property
    def inflight(self) -> int:
        """Number of distinct computations currently in flight."""
        return len(self._inflight)

    def stats(self) -> Dict[str, int]:
        """Cumulative counters: computations led vs. requests coalesced.

        ``leaders`` counts computations started; ``coalesced`` counts
        requests that joined an already in-flight computation instead of
        starting their own (the dedup the service surfaces in ``stats``).
        """
        return {
            "leaders": self._leaders,
            "coalesced": self._coalesced,
            "inflight": len(self._inflight),
        }

    async def run(
        self,
        key: Hashable,
        factory: Callable[[], Awaitable[Any]],
    ) -> Any:
        """Return ``factory()``'s result, sharing any in-flight run for ``key``.

        Parameters
        ----------
        key:
            Identity of the computation; requests with equal keys share
            one execution.
        factory:
            Zero-argument coroutine function producing the result; only
            invoked when no computation for ``key`` is in flight.

        Raises
        ------
        Exception
            Whatever the (possibly shared) computation raised — every
            waiter observes the same exception.
        """
        task = self._inflight.get(key)
        if task is None:
            self._leaders += 1
            task = asyncio.ensure_future(factory())
            self._inflight[key] = task
            task.add_done_callback(lambda done, key=key: self._finish(key, done))
        else:
            self._coalesced += 1
        return await asyncio.shield(task)

    def _finish(self, key: Hashable, task: asyncio.Task) -> None:
        self._inflight.pop(key, None)
        if not task.cancelled():
            # Mark a failure as observed even if every waiter was
            # cancelled before the result landed, so the event loop
            # never logs "exception was never retrieved".
            task.exception()
