"""The JSON-line wire protocol of the preview-table service.

One frame per line, UTF-8 JSON, ``\\n`` terminated — the simplest
protocol a shell user can speak with ``nc`` and a test can assert
byte-for-byte.  A request frame is an object with an ``op`` plus
optional ``id`` (echoed back verbatim), ``dataset`` (defaulted when the
service hosts exactly one) and ``params``:

.. code-block:: json

    {"op": "preview", "id": 1, "dataset": "film", "params": {"k": 2, "n": 4}}

Every response carries ``ok`` — ``true`` with a ``result`` object, or
``false`` with an ``error`` object holding a machine-readable ``code``
and a human-readable ``message``.  The full request/response reference
with captured examples lives in ``docs/serving.md``; the error-code
table is :data:`ERROR_CODES`.

This module is pure data plumbing: framing, parsing and validation.  It
has no asyncio dependency, so the blocking :class:`~repro.serve.ServeClient`
and the async service share one codec.

>>> frame = encode_frame({"op": "health", "id": 7})
>>> frame
b'{"id": 7, "op": "health"}\\n'
>>> parse_request(decode_frame(frame)).op
'health'
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..exceptions import ProtocolError

#: Default cap on one encoded *request* frame, bytes.  Oversized
#: requests are rejected with an ``oversized`` error before any JSON
#: parsing happens (responses are not capped: a legal sweep can
#: serialize past any fixed bound, and clients read to the newline).
MAX_FRAME_BYTES = 1 << 20

#: Operations a service accepts.  ``subscribe`` upgrades the connection
#: to a replication stream and is only honored by writer-role services;
#: everywhere else it answers ``bad-request``.
OPERATIONS = ("preview", "sweep", "mutate", "stats", "health", "subscribe")

#: Machine-readable error codes a response may carry.
ERROR_CODES = {
    "bad-frame": "the line is not a JSON object",
    "bad-request": "the frame is valid JSON but violates the request shape",
    "unknown-op": "the op is not one of OPERATIONS",
    "unknown-dataset": "the dataset name is not hosted by this service",
    "invalid-query": "the query parameters fail constraint validation",
    "infeasible": "no preview satisfies the constraints",
    "oversized": "the request frame exceeds the service's frame cap",
    "overloaded": "admission control rejected the request (queue full)",
    "timeout": "the request exceeded the per-request timeout",
    "internal": "an unexpected server-side error",
    "read-only": "a mutate was sent to a read replica (only the writer mutates)",
    "lagging": "the replica could not reach the requested generation in time",
}


@dataclass(frozen=True)
class Request:
    """One parsed, shape-validated request frame.

    Attributes
    ----------
    op:
        The operation name (member of :data:`OPERATIONS`).
    id:
        Client-chosen correlation value (string, number, or None),
        echoed back verbatim in the response.
    dataset:
        Target dataset name, or None to use the service's sole dataset.
    params:
        Operation parameters (always a dict, possibly empty).
    """

    op: str
    id: Any = None
    dataset: Optional[str] = None
    params: Dict[str, Any] = field(default_factory=dict)


def encode_frame(payload: Dict[str, Any]) -> bytes:
    """Encode one frame: compact, key-sorted JSON plus the ``\\n`` terminator.

    Key-sorted encoding makes equal payloads byte-identical on the wire,
    which the coalescing tests (and the ``docs/serving.md`` examples)
    rely on.

    Raises
    ------
    ProtocolError
        If ``payload`` contains values JSON cannot represent.
    """
    try:
        text = json.dumps(payload, sort_keys=True, separators=(", ", ": "))
    except (TypeError, ValueError) as exc:
        raise ProtocolError("bad-frame", f"unencodable frame: {exc}") from exc
    return text.encode("utf-8") + b"\n"


def decode_frame(data: bytes, max_frame: int = MAX_FRAME_BYTES) -> Dict[str, Any]:
    """Decode one received line into a JSON object.

    Returns
    -------
    dict
        The decoded JSON object.

    Raises
    ------
    ProtocolError
        With code ``oversized`` when the line exceeds ``max_frame``
        (default :data:`MAX_FRAME_BYTES`), or ``bad-frame`` when it is
        not valid UTF-8 JSON or not a JSON *object*.
    """
    if len(data) > max_frame:
        raise ProtocolError(
            "oversized",
            f"frame of {len(data)} bytes exceeds the {max_frame}-byte cap",
        )
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("bad-frame", f"undecodable frame: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            "bad-frame", f"frame must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def parse_request(payload: Dict[str, Any]) -> Request:
    """Validate a decoded frame's shape into a :class:`Request`.

    Raises
    ------
    ProtocolError
        With code ``bad-request`` for a missing/malformed ``op``,
        ``dataset`` or ``params`` field, or ``unknown-op`` for an
        unrecognized operation.
    """
    op = payload.get("op")
    if not isinstance(op, str):
        raise ProtocolError("bad-request", "request must carry a string 'op'")
    if op not in OPERATIONS:
        raise ProtocolError(
            "unknown-op",
            f"unknown op {op!r}; expected one of {', '.join(OPERATIONS)}",
        )
    request_id = payload.get("id")
    if request_id is not None and not isinstance(request_id, (str, int, float)):
        raise ProtocolError("bad-request", "'id' must be a string or number")
    dataset = payload.get("dataset")
    if dataset is not None and not isinstance(dataset, str):
        raise ProtocolError("bad-request", "'dataset' must be a string")
    params = payload.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError("bad-request", "'params' must be an object")
    return Request(op=op, id=request_id, dataset=dataset, params=params)


def ok_response(request_id: Any, op: str, result: Dict[str, Any]) -> Dict[str, Any]:
    """The success response frame for one request."""
    return {"id": request_id, "ok": True, "op": op, "result": result}


def error_response(request_id: Any, code: str, message: str) -> Dict[str, Any]:
    """The error response frame for one request.

    ``code`` must be a member of :data:`ERROR_CODES` — an unknown code
    is itself a programming error and maps to ``internal``.
    """
    if code not in ERROR_CODES:
        code, message = "internal", f"unmapped error code {code!r}: {message}"
    return {
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": message},
    }
