"""An asyncio read/write lock with writer preference.

The service serializes *mutations* against *queries* per dataset: any
number of concurrent queries may hold the read side, a mutation takes
the write side exclusively, and — because a steady query stream must not
starve mutations — a waiting writer blocks new readers from being
admitted (writer preference).

The implementation is a single :class:`asyncio.Condition` over three
counters; both sides are exposed as async context managers:

.. code-block:: python

    lock = ReadWriteLock()
    async with lock.read_locked():     # many concurrently
        ...
    async with lock.write_locked():    # exclusive
        ...

Cancellation-safe: a task cancelled while *waiting* never leaves a
counter behind; a task cancelled while *holding* a side releases it via
the context manager's ``finally``.
"""

from __future__ import annotations

import asyncio
from contextlib import asynccontextmanager


class ReadWriteLock:
    """Many-reader / one-writer asyncio lock with writer preference."""

    def __init__(self) -> None:
        # Created lazily inside the first acquiring coroutine: on
        # Python 3.9 an asyncio.Condition binds the construction-time
        # event loop, and hosts are routinely built on a different
        # thread than the one that serves them.
        self._cond: asyncio.Condition = None  # type: ignore[assignment]
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    def _condition(self) -> asyncio.Condition:
        if self._cond is None:
            self._cond = asyncio.Condition()
        return self._cond

    @asynccontextmanager
    async def read_locked(self):
        """Hold the shared (read) side for the duration of the block.

        Waits while a writer is active *or waiting* — the preference
        that keeps a mutation from starving under continuous queries.
        """
        cond = self._condition()
        async with cond:
            while self._writer_active or self._writers_waiting:
                await cond.wait()
            self._readers += 1
        try:
            yield self
        finally:
            async with cond:
                self._readers -= 1
                if self._readers == 0:
                    cond.notify_all()

    @asynccontextmanager
    async def write_locked(self):
        """Hold the exclusive (write) side for the duration of the block.

        Waits until every admitted reader has drained and no other
        writer is active.
        """
        cond = self._condition()
        async with cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    await cond.wait()
                self._writer_active = True
            finally:
                self._writers_waiting -= 1
        try:
            yield self
        finally:
            async with cond:
                self._writer_active = False
                cond.notify_all()
