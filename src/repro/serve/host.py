"""Per-dataset engine ownership for the preview service.

An :class:`EngineHost` is the service-side twin of one dataset: it owns
the :class:`~repro.ext.incremental.IncrementalEntityGraph` wrapper, the
warm :class:`~repro.engine.PreviewEngine` bound to it, an optional
long-lived :class:`~repro.parallel.ShardedExecutor` (``jobs > 1``), and
the concurrency machinery that makes them safe to drive from many
connections at once:

* **one worker thread per host** — every engine/graph touch (query,
  sweep, mutation, even ``cache_info``) runs on a dedicated
  single-thread executor, so the engine's caches are never raced by
  construction.  Parallelism *within* a computation comes from the
  sharded process pool; parallelism *across* datasets comes from each
  host having its own thread;
* **an async read/write lock** — queries hold the read side while they
  await their computation, mutations take the write side, so a mutation
  waits for admitted queries to drain and (writer preference) is never
  starved by a steady query stream;
* **a request coalescer** — identical in-flight ``(op, query,
  generation)`` requests share one computation and receive the *same*
  response payload object (see :mod:`repro.serve.coalescer`);
* **a response cache** — completed payloads are kept per ``(op, query,
  generation)`` key, so a warm identical request is answered directly on
  the event loop with no worker-thread hop at all.  Generations are
  monotonic, which makes invalidation trivial: a mutation clears the
  cache outright (every entry is keyed by a generation no future
  request can ask for).  The engine memo underneath still provides the
  second-level warmth — a response-cache miss whose query the engine
  has answered before costs one thread hop, not a recomputation.

The host speaks plain dicts: params in, JSON-ready result dicts out.
Wire framing, admission control and error mapping live one layer up in
:class:`~repro.serve.PreviewService`.
"""

from __future__ import annotations

import asyncio
import json
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Hashable, List, Optional

from ..core.serialize import result_to_dict
from ..engine import PreviewEngine, PreviewQuery
from ..exceptions import ProtocolError
from ..ext.incremental import IncrementalEntityGraph
from ..model.entity_graph import EntityGraph
from ..model.ids import RelationshipTypeId
from ..parallel import ShardedExecutor
from .coalescer import RequestCoalescer
from .locks import ReadWriteLock


def _require(params: Dict[str, Any], field: str, kind, kind_name: str):
    """One required typed field of a params dict, or ``bad-request``."""
    value = params.get(field)
    if not isinstance(value, kind) or isinstance(value, bool):
        raise ProtocolError(
            "bad-request", f"param {field!r} must be a {kind_name}"
        )
    return value


def parse_query(params: Dict[str, Any]) -> PreviewQuery:
    """Build the :class:`PreviewQuery` described by a ``preview`` params dict.

    Required: integer ``k`` and ``n``.  Optional: integer ``d`` with
    string ``mode`` (``"tight"``/``"diverse"``, default tight) and
    string ``algorithm`` (default ``"auto"``).

    Raises
    ------
    ProtocolError
        With code ``bad-request`` when a field has the wrong JSON type.
        (Semantic validation — ``n >= k``, known algorithm, ... — happens
        in the engine and maps to ``invalid-query``.)
    """
    k = _require(params, "k", int, "integer")
    n = _require(params, "n", int, "integer")
    d = params.get("d")
    if d is not None and (isinstance(d, bool) or not isinstance(d, int)):
        raise ProtocolError("bad-request", "param 'd' must be an integer")
    mode = params.get("mode", "tight")
    if not isinstance(mode, str):
        raise ProtocolError("bad-request", "param 'mode' must be a string")
    algorithm = params.get("algorithm", "auto")
    if not isinstance(algorithm, str):
        raise ProtocolError("bad-request", "param 'algorithm' must be a string")
    return PreviewQuery(k=k, n=n, d=d, mode=mode, algorithm=algorithm)


def parse_sweep(params: Dict[str, Any]) -> List[PreviewQuery]:
    """The query batch described by a ``sweep`` params dict.

    Two shapes are accepted: an explicit ``queries`` list of per-query
    param objects, or the common budget-sweep shorthand — one ``k`` with
    an ``ns`` list (plus optional shared ``d``/``mode``/``algorithm``).

    Raises
    ------
    ProtocolError
        With code ``bad-request`` for a malformed or empty batch.
    """
    if "queries" in params:
        specs = params["queries"]
        if not isinstance(specs, list) or not specs:
            raise ProtocolError(
                "bad-request", "param 'queries' must be a non-empty array"
            )
        if not all(isinstance(spec, dict) for spec in specs):
            raise ProtocolError(
                "bad-request", "every 'queries' entry must be an object"
            )
        return [parse_query(spec) for spec in specs]
    ns = params.get("ns")
    if not isinstance(ns, list) or not ns:
        raise ProtocolError(
            "bad-request", "sweep needs 'queries' or a non-empty 'ns' array"
        )
    shared = {key: value for key, value in params.items() if key != "ns"}
    return [parse_query({**shared, "n": n}) for n in ns]


def parse_mutation(params: Dict[str, Any]):
    """Validate a ``mutate`` params dict into ``(kind, fields)``.

    ``kind`` is ``"entity"`` (fields: ``(entity, types)``) or
    ``"relationship"`` (fields: ``(source, target, name, source_type,
    target_type)``).  Public because the workload replayers
    (:mod:`repro.workload.replay`) interpret recorded mutation params
    with exactly the wire semantics the service applies.

    Raises
    ------
    ProtocolError
        With code ``bad-request`` for a malformed params dict.
    """
    kind = _require(params, "kind", str, "string")
    if kind == "entity":
        entity = _require(params, "entity", str, "string")
        types = params.get("types")
        if (
            not isinstance(types, list)
            or not types
            or not all(isinstance(t, str) for t in types)
        ):
            raise ProtocolError(
                "bad-request", "param 'types' must be a non-empty string array"
            )
        return kind, (entity, types)
    if kind == "relationship":
        fields = tuple(
            _require(params, name, str, "string")
            for name in ("source", "target", "name", "source_type", "target_type")
        )
        return kind, fields
    raise ProtocolError(
        "bad-request", f"param 'kind' must be 'entity' or 'relationship', got {kind!r}"
    )


class EngineHost:
    """One served dataset: a live graph, its warm engine, and their locks.

    Parameters
    ----------
    name:
        The dataset name requests address this host by.
    data:
        The dataset: an :class:`EntityGraph` (wrapped in a fresh
        :class:`IncrementalEntityGraph` so wire mutations flow through
        the delta pipeline) or an already-wrapped incremental graph.
        The host assumes ownership — serve a private copy, not a graph
        shared with other code.
    key_scorer, nonkey_scorer:
        Scoring measure names for the hosted engine.
    jobs:
        Worker processes for sharded subset evaluation; ``jobs > 1``
        keeps one :class:`ShardedExecutor` alive across requests.

    Raises
    ------
    ProtocolError
        From the request coroutines, for malformed params.
    """

    def __init__(
        self,
        name: str,
        data,
        key_scorer: str = "coverage",
        nonkey_scorer: str = "coverage",
        jobs: int = 1,
    ) -> None:
        self.name = name
        if isinstance(data, IncrementalEntityGraph):
            self.graph = data
        elif isinstance(data, EntityGraph):
            self.graph = IncrementalEntityGraph(base=data)
        else:
            raise TypeError(
                "EngineHost needs an EntityGraph or IncrementalEntityGraph, "
                f"got {type(data).__name__}"
            )
        self.key_scorer = key_scorer
        self.nonkey_scorer = nonkey_scorer
        self.engine: PreviewEngine = self.graph.engine(key_scorer, nonkey_scorer)
        self.jobs = jobs
        # spawn, never fork: by the time the lazy pool starts, this
        # process runs an event loop plus one worker thread per host,
        # and forking a multi-threaded process can clone held locks
        # into the children.
        self._sharded: Optional[ShardedExecutor] = (
            ShardedExecutor(jobs, start_method="spawn") if jobs != 1 else None
        )
        # One worker thread serializes every engine/graph touch: the
        # engine's cache dicts are single-threaded by construction.
        self._worker = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"repro-serve-{name}"
        )
        self._lock = ReadWriteLock()
        self._coalescer = RequestCoalescer()
        #: Completed payloads by (op, query, generation) — LRU-bounded.
        #: Every mutation clears it (old-generation keys are dead: the
        #: generation counter never revisits a value).
        self._responses: "OrderedDict[Hashable, Dict[str, Any]]" = OrderedDict()
        self._response_hits = 0
        self._mutations = 0

    #: Bound on distinct cached response payloads per host.
    RESPONSE_CACHE_SIZE = 256

    #: This host's place in a replication topology; the writer/replica
    #: subclasses in :mod:`repro.replicate` override it.
    role = "standalone"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the worker thread and any sharded process pool."""
        self._worker.shutdown(wait=True)
        if self._sharded is not None:
            self._sharded.close()
            self._sharded = None

    async def _on_worker(self, fn) -> Any:
        return await asyncio.get_running_loop().run_in_executor(self._worker, fn)

    async def _cached(self, key: Hashable, compute) -> Dict[str, Any]:
        """Serve ``key`` from the response cache, coalescing misses.

        The store happens inside the shared (shielded) task, so a
        computation whose every waiter disconnected still lands in the
        cache for the next ask.  Entries hold the payload dict *and* its
        JSON encoding, so the service's fast path can answer a warm
        request without re-serializing (see :meth:`encoded_response`).
        """
        entry = self._responses.get(key)
        if entry is not None:
            self._response_hits += 1
            self._responses.move_to_end(key)
            return entry[0]

        async def factory() -> Dict[str, Any]:
            payload = await self._on_worker(compute)
            encoded = json.dumps(
                payload, sort_keys=True, separators=(", ", ": ")
            ).encode("utf-8")
            self._responses[key] = (payload, encoded)
            if len(self._responses) > self.RESPONSE_CACHE_SIZE:
                self._responses.popitem(last=False)
            return payload

        return await self._coalescer.run(key, factory)

    @staticmethod
    def _preview_key(query, generation: int):
        """The coalescing/response-cache key of one preview request."""
        return ("preview", query.cache_key(), query.algorithm, generation)

    @staticmethod
    def _sweep_key(queries, generation: int):
        """The coalescing/response-cache key of one sweep request."""
        return (
            "sweep",
            tuple((q.cache_key(), q.algorithm) for q in queries),
            generation,
        )

    def _request_key(self, op: str, params: Dict[str, Any], generation: int):
        """Parse ``params`` and build the request key (fast-path entry)."""
        if op == "preview":
            return self._preview_key(parse_query(params), generation)
        return self._sweep_key(parse_sweep(params), generation)

    def encoded_response(self, op: str, params: Dict[str, Any]) -> Optional[bytes]:
        """The pre-encoded payload for a warm request, or None.

        The synchronous fast path: called by the service directly on the
        event loop, it answers a response-cache hit with the bytes
        serialized when the payload was computed — no worker-thread hop,
        no task, no re-encoding.  Runs without the read lock: the lookup
        is one synchronous block (it cannot interleave with a mutation's
        critical section), the key pins the generation read in the same
        block, and every mutation clears the cache before acknowledging
        — so a hit is always consistent with some pre-mutation
        linearization the read lock would also have allowed.

        Returns None (deferring to the async path) for cache misses and
        for malformed params, which the slow path turns into proper
        error responses.
        """
        try:
            key = self._request_key(op, params, self.graph.generation)
        except ProtocolError:
            return None
        entry = self._responses.get(key)
        if entry is None:
            return None
        self._response_hits += 1
        self._responses.move_to_end(key)
        return entry[1]

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    async def preview(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Answer one ``preview`` request.

        Returns
        -------
        dict
            ``{"generation": g, "result": <serialized DiscoveryResult>}``
            — the result field is byte-identical to serializing a direct
            ``PreviewEngine.run`` of the same query.

        Raises
        ------
        ProtocolError
            ``bad-request`` for malformed params.
        ReproError
            ``InfeasiblePreviewError`` / constraint errors from the
            engine (mapped to ``infeasible`` / ``invalid-query`` wire
            codes by the service).
        """
        query = parse_query(params)
        async with self._lock.read_locked():
            generation = self.graph.generation
            key = self._preview_key(query, generation)

            def compute() -> Dict[str, Any]:
                result = self.engine.run(query, executor=self._sharded)
                return {"generation": generation, "result": result_to_dict(result)}

            return await self._cached(key, compute)

    async def sweep(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Answer one ``sweep`` request (batch of preview points).

        Returns
        -------
        dict
            ``{"generation": g, "results": [... or null]}`` positionally
            aligned with the requested batch; infeasible points are
            null (the batch itself never fails on infeasibility).
        """
        queries = parse_sweep(params)
        async with self._lock.read_locked():
            generation = self.graph.generation
            key = self._sweep_key(queries, generation)

            def compute() -> Dict[str, Any]:
                results = self.engine.sweep(
                    queries, skip_infeasible=True, executor=self._sharded
                )
                return {
                    "generation": generation,
                    "results": [
                        None if result is None else result_to_dict(result)
                        for result in results
                    ],
                }

            return await self._cached(key, compute)

    async def mutate(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Apply one ``mutate`` request under the exclusive write lock.

        Returns
        -------
        dict
            ``{"kind": ..., "generation": g}`` with the post-mutation
            generation — the client's token for "queries answered at
            this generation or later observe my write".

        Raises
        ------
        ProtocolError
            ``bad-request`` for malformed params.
        ReproError
            Model/schema violations from the graph (mapped to
            ``invalid-query`` by the service).
        """
        kind, fields = parse_mutation(params)

        def apply() -> int:
            if kind == "entity":
                entity, types = fields
                self.graph.add_entity(entity, types)
            else:
                source, target, name, source_type, target_type = fields
                self.graph.add_relationship(
                    source,
                    target,
                    RelationshipTypeId(
                        name=name, source_type=source_type, target_type=target_type
                    ),
                )
            return self.graph.generation

        async with self._lock.write_locked():
            generation = await self._on_worker(apply)
            self._mutations += 1
            # Every cached payload is keyed by an older generation the
            # monotonic counter will never serve again.
            self._responses.clear()
        return {"kind": kind, "generation": generation}

    async def stats(self) -> Dict[str, Any]:
        """This host's counters: engine cache, coalescer, mutations.

        Runs ``cache_info`` on the host's worker thread (it synchronizes
        the engine with the latest generation, which must never race a
        computation).
        """
        async with self._lock.read_locked():
            info = await self._on_worker(self.engine.cache_info)
        return {
            "dataset": self.name,
            "jobs": self.jobs,
            "mutations": self._mutations,
            "engine": info,
            "coalescer": self._coalescer.stats(),
            "replication": self.replication_stats(),
            "responses": {
                "entries": len(self._responses),
                "hits": self._response_hits,
            },
        }

    def replication_stats(self) -> Dict[str, Any]:
        """This host's place in the replication topology, for ``stats``.

        A standalone host is trivially its own writer: generation is
        authoritative and lag is zero.  The writer/replica subclasses in
        :mod:`repro.replicate` extend this with subscriber counts and
        replica lag.
        """
        return {
            "role": self.role,
            "generation": self.graph.generation,
            "lag": 0,
        }
