"""``repro.serve`` — the preview-table service layer.

Everything below this package turns one Python process into a
multi-client preview-table server over a warm
:class:`~repro.engine.PreviewEngine`: the ROADMAP's "serving heavy
traffic" scenario, built on ``asyncio`` with zero third-party
dependencies.

* :mod:`~repro.serve.protocol` — the JSON-line wire protocol (framing,
  request validation, error codes);
* :mod:`~repro.serve.locks` — the writer-preferring async read/write
  lock that serializes mutations against queries;
* :mod:`~repro.serve.coalescer` — in-flight request coalescing: all
  concurrent identical ``(dataset, query, generation)`` requests await
  one computation and share one result object;
* :mod:`~repro.serve.host` — :class:`EngineHost`, one per dataset: the
  incremental graph, its engine, a long-lived sharded executor, and a
  single worker thread that serializes every engine touch;
* :mod:`~repro.serve.service` — :class:`PreviewService`: sockets,
  admission control (bounded in-flight requests + per-request
  timeouts), error mapping, ``health``/``stats``;
* :mod:`~repro.serve.client` — :class:`ServeClient`, the blocking
  client tests and benchmarks drive the real socket path with.

See ``docs/serving.md`` for the protocol reference with captured
request/response examples, and ``docs/architecture.md`` for where this
layer sits in the stack.
"""

from .client import ServeClient
from .coalescer import RequestCoalescer
from .host import EngineHost, parse_mutation, parse_query, parse_sweep
from .locks import ReadWriteLock
from .protocol import (
    ERROR_CODES,
    MAX_FRAME_BYTES,
    OPERATIONS,
    Request,
    decode_frame,
    encode_frame,
    error_response,
    ok_response,
    parse_request,
)
from .service import BackgroundServer, LineService, PreviewService, run_in_background

__all__ = [
    "BackgroundServer",
    "ERROR_CODES",
    "EngineHost",
    "LineService",
    "MAX_FRAME_BYTES",
    "OPERATIONS",
    "PreviewService",
    "ReadWriteLock",
    "Request",
    "RequestCoalescer",
    "ServeClient",
    "decode_frame",
    "encode_frame",
    "error_response",
    "ok_response",
    "parse_mutation",
    "parse_query",
    "parse_request",
    "parse_sweep",
    "run_in_background",
]
