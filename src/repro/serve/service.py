"""The asyncio preview-table service: sockets, admission, dispatch.

:class:`PreviewService` turns a set of :class:`~repro.serve.EngineHost`\\ s
into a multi-client JSON-line server (``asyncio.start_server``; no
third-party dependencies).  Its responsibilities are exactly the ones
the hosts don't have:

* **framing** — one request per line, one response per line, in order,
  per connection (see :mod:`repro.serve.protocol`).  Malformed frames
  get a structured ``bad-frame`` error and the connection stays usable;
  oversized frames get an ``oversized`` error and the connection is
  closed (the stream can no longer be framed);
* **admission control** — at most ``max_pending`` requests in flight
  service-wide; excess requests are rejected *immediately* with an
  ``overloaded`` error instead of queueing without bound.  Every
  admitted request runs under a per-request timeout and answers
  ``timeout`` when it expires — a client never hangs on a silent
  server.  (A timed-out computation keeps running on its host's worker
  thread and still populates the engine memo: the *next* ask is a hit.)
* **error mapping** — library exceptions become wire codes
  (``infeasible``, ``invalid-query``, ...); unexpected ones become
  ``internal`` without killing the connection;
* **service-level ops** — ``health`` and ``stats`` aggregate across
  hosts.

Use :func:`run_in_background` to drive a service from synchronous code
(tests, benchmarks, notebooks): it runs the event loop in a daemon
thread and returns a handle with the bound port and a ``stop()``.
"""

from __future__ import annotations

import asyncio
import json
import logging
import threading
from typing import Any, Dict, Iterable, Mapping, Optional

from ..exceptions import (
    InfeasiblePreviewError,
    ProtocolError,
    ReproError,
    ServeError,
)
from .host import EngineHost
from .protocol import (
    MAX_FRAME_BYTES,
    decode_frame,
    encode_frame,
    error_response,
    ok_response,
    parse_request,
)

logger = logging.getLogger(__name__)


class LineService:
    """Framing, admission and error mapping over JSON-line TCP.

    The transport-level half of a service: everything between the
    socket and :meth:`_dispatch` — the per-connection line loop,
    admission control, per-request timeouts, the exception-to-wire-code
    mapping, and lifecycle.  Subclasses supply the actual request
    handling (:class:`PreviewService` dispatches to dataset hosts; the
    replication router in :mod:`repro.replicate` forwards to backends).

    Two optional hooks specialize the line loop without re-implementing
    it: :meth:`_fast_response` may answer a request synchronously on
    the event loop (the warm response-cache path), and an op listed in
    :attr:`STREAMING_OPS` upgrades its connection to a server-push
    stream via :meth:`_open_stream` (the replication ``subscribe``).

    Parameters
    ----------
    max_pending:
        Admission-control bound on concurrently admitted requests
        across the whole service; request number ``max_pending + 1``
        is answered ``overloaded`` immediately.
    request_timeout:
        Per-request wall-clock budget in seconds; expiry answers
        ``timeout``.  None disables the timeout.
    max_frame:
        Cap on one request line, bytes.
    """

    #: Ops that upgrade their connection to a server-push stream
    #: instead of the request/response loop (see :meth:`_open_stream`).
    STREAMING_OPS: tuple = ()

    def __init__(
        self,
        max_pending: int = 64,
        request_timeout: Optional[float] = 30.0,
        max_frame: int = MAX_FRAME_BYTES,
    ) -> None:
        self.max_pending = max_pending
        self.request_timeout = request_timeout
        self.max_frame = max_frame
        self._server: Optional[asyncio.AbstractServer] = None
        self.address: Optional[tuple] = None
        self._inflight = 0
        self._connections: set = set()
        self._counters = {
            "requests": 0,
            "ok": 0,
            "errors": 0,
            "rejected": 0,
            "timeouts": 0,
            "connections": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind and start accepting connections (port 0 = ephemeral).

        The bound ``(host, port)`` lands in :attr:`address`.
        """
        # The stream limit bounds readline() buffering; +2 so a frame of
        # exactly max_frame bytes (plus its newline) still parses.
        self._server = await asyncio.start_server(
            self._on_connection, host, port, limit=self.max_frame + 2
        )
        self.address = self._server.sockets[0].getsockname()[:2]

    async def serve_forever(self) -> None:
        """Serve until cancelled (:meth:`start` must have been awaited)."""
        if self._server is None:
            raise ServeError("PreviewService.start() has not been awaited")
        await self._server.serve_forever()

    async def aclose(self) -> None:
        """Stop accepting and drop every open connection."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._counters["connections"] += 1
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            await self._serve_connection(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        except asyncio.CancelledError:
            # Only aclose() cancels connection handlers; returning
            # normally (instead of re-raising into the streams
            # done-callback, which would log it) is the clean exit.
            pass
        except Exception:  # pragma: no cover - defensive
            # Never absorb an unexpected crash: log it, then let it
            # propagate into the task (finally still closes the writer;
            # aclose() gathers connection tasks with return_exceptions).
            logger.exception("connection handler crashed")
            raise
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            try:
                line = await reader.readline()
            except ValueError:
                # readline overran the stream limit: the frame is too
                # large and the stream can no longer be split into
                # lines — answer once, then close.
                await self._reply(
                    writer,
                    error_response(
                        None,
                        "oversized",
                        f"request frame exceeds {self.max_frame} bytes",
                    ),
                )
                return
            if not line:
                return  # EOF
            if line.strip() == b"":
                continue  # blank keep-alive line
            if len(line) > self.max_frame:
                # The stream limit admits up to max_frame + 2 bytes, so
                # a line can land here marginally over the cap; the
                # contract is the same as the overrun branch above —
                # answer once, then close.
                await self._reply(
                    writer,
                    error_response(
                        None,
                        "oversized",
                        f"request frame exceeds {self.max_frame} bytes",
                    ),
                )
                return
            fast = self._fast_response(line)
            if fast is not None:
                writer.write(fast)
                await writer.drain()
                continue
            stream = self._streaming_request(line)
            if stream is not None:
                # The connection is upgraded: the stream owns it until
                # it ends, and the line loop never resumes (one stream
                # per connection, trailing requests are undefined).
                await self._open_stream(stream, writer)
                return
            response = await self._respond_to_line(line)
            await self._reply(writer, response)

    async def _reply(self, writer: asyncio.StreamWriter, response: Dict[str, Any]) -> None:
        writer.write(encode_frame(response))
        await writer.drain()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _fast_response(self, line: bytes) -> Optional[bytes]:
        """The synchronous warm path: a fully-encoded response, or None.

        The default has no cache to consult; subclasses with one
        (:class:`PreviewService`) answer warm requests entirely on the
        event loop.  Returning None is never an error — the full path
        re-parses the line and produces the proper response.
        """
        return None

    def _streaming_request(self, line: bytes) -> Optional[Any]:
        """Parse ``line`` iff it opens a stream (op in STREAMING_OPS).

        Malformed lines return None so the normal request path reports
        the error with the standard codes.
        """
        if not self.STREAMING_OPS:
            return None
        try:
            request = parse_request(decode_frame(line, self.max_frame))
        except ProtocolError:
            return None
        return request if request.op in self.STREAMING_OPS else None

    async def _open_stream(
        self, request: Any, writer: asyncio.StreamWriter
    ) -> None:
        """Serve a streaming op until it ends (subclass hook).

        Only reached when :attr:`STREAMING_OPS` names the request's op;
        the base class never streams.
        """
        raise NotImplementedError  # pragma: no cover - subclass hook

    async def _respond_to_line(self, line: bytes) -> Dict[str, Any]:
        """One request line to one response dict (never raises)."""
        self._counters["requests"] += 1
        request_id = None
        try:
            payload = decode_frame(line, self.max_frame)
            request_id = payload.get("id")  # echoed even on parse errors
            request = parse_request(payload)
        except ProtocolError as exc:
            self._counters["errors"] += 1
            return error_response(request_id, exc.code, str(exc))
        if self._inflight >= self.max_pending:
            self._counters["rejected"] += 1
            self._counters["errors"] += 1
            return error_response(
                request.id,
                "overloaded",
                f"service is at its admission limit ({self.max_pending} in flight)",
            )
        self._inflight += 1
        try:
            result = await asyncio.wait_for(
                self._guarded(request), self.request_timeout
            )
        except asyncio.TimeoutError:
            self._counters["timeouts"] += 1
            self._counters["errors"] += 1
            return error_response(
                request.id,
                "timeout",
                f"request exceeded the {self.request_timeout}s budget",
            )
        except ProtocolError as exc:
            self._counters["errors"] += 1
            return error_response(request.id, exc.code, str(exc))
        except InfeasiblePreviewError as exc:
            self._counters["errors"] += 1
            return error_response(request.id, "infeasible", str(exc))
        except ReproError as exc:
            self._counters["errors"] += 1
            return error_response(request.id, "invalid-query", str(exc))
        finally:
            self._inflight -= 1
        self._counters["ok"] += 1
        return ok_response(request.id, request.op, result)

    async def _guarded(self, request) -> Dict[str, Any]:
        """Dispatch a request, wrapping unexpected crashes as structured errors.

        Anything that is not already a :class:`ReproError` is logged and
        re-raised as ``ProtocolError("internal", ...)``, which the caller
        maps to the same ``internal`` wire code a crash always produced —
        but now through the documented error hierarchy instead of a
        swallowed stack trace.  Cancellation (``BaseException``) passes
        through untouched so request timeouts keep working.
        """
        try:
            return await self._dispatch(request)
        except ReproError:
            raise
        except Exception as exc:  # pragma: no cover - defensive
            logger.exception("request failed unexpectedly")
            raise ProtocolError(
                "internal", f"{type(exc).__name__}: {exc}"
            ) from exc

    async def _dispatch(self, request) -> Dict[str, Any]:
        """One validated request to one result dict (subclass hook).

        Raise :class:`ProtocolError` (or any :class:`ReproError`) to
        answer a structured error; the caller maps the codes.
        """
        raise NotImplementedError  # pragma: no cover - subclass hook

    def stats(self) -> Dict[str, int]:
        """Service-level counters (requests, errors, rejections, ...)."""
        counters = dict(self._counters)
        counters["active_connections"] = len(self._connections)
        counters["max_pending"] = self.max_pending
        return counters


class PreviewService(LineService):
    """A multi-dataset preview server over JSON-line TCP.

    Parameters
    ----------
    hosts:
        ``name -> EngineHost`` for every served dataset (or an iterable
        of hosts, keyed by their names).
    max_pending, request_timeout, max_frame:
        See :class:`LineService`.

    Raises
    ------
    ServeError
        When constructed with no hosts or duplicate dataset names.
    """

    def __init__(
        self,
        hosts: "Mapping[str, EngineHost] | Iterable[EngineHost]",
        max_pending: int = 64,
        request_timeout: Optional[float] = 30.0,
        max_frame: int = MAX_FRAME_BYTES,
    ) -> None:
        super().__init__(
            max_pending=max_pending,
            request_timeout=request_timeout,
            max_frame=max_frame,
        )
        if isinstance(hosts, Mapping):
            self._hosts: Dict[str, EngineHost] = dict(hosts)
        else:
            self._hosts = {}
            for host in hosts:
                if host.name in self._hosts:
                    raise ServeError(f"duplicate dataset name {host.name!r}")
                self._hosts[host.name] = host
        if not self._hosts:
            raise ServeError("a PreviewService needs at least one dataset host")

    async def aclose(self) -> None:
        """Stop accepting, drop open connections, release every host."""
        await super().aclose()
        loop = asyncio.get_running_loop()
        for host in self._hosts.values():
            # Worker-thread shutdown joins a thread: off the event loop.
            await loop.run_in_executor(None, host.close)

    def _fast_response(self, line: bytes) -> Optional[bytes]:
        """The synchronous warm path: a fully-encoded response, or None.

        A ``preview``/``sweep`` request whose payload sits in its host's
        response cache is answered entirely on the event loop — no
        per-request task, no timeout timer, no worker-thread hop, no
        re-serialization; the cached payload bytes are spliced into a
        frame identical to what the async path would produce.  Anything
        else — cache misses, mutations, service ops, malformed frames —
        returns None and takes the full path (which also produces the
        proper error responses; a request rejected here is never an
        error).  Cache hits bypass admission control deliberately: they
        cannot occupy the service, which exists to bound *computations*.
        """
        try:
            payload = decode_frame(line, self.max_frame)
            request = parse_request(payload)
        except ProtocolError:
            return None
        if request.op not in ("preview", "sweep"):
            return None
        try:
            host = self._resolve_host(request)
        except ProtocolError:
            return None
        encoded = host.encoded_response(request.op, request.params)
        if encoded is None:
            return None
        self._counters["requests"] += 1
        self._counters["ok"] += 1
        # Splices to the exact bytes of encode_frame(ok_response(...)):
        # sort_keys orders id < ok < op < result, same separators.
        id_json = json.dumps(
            request.id, sort_keys=True, separators=(", ", ": ")
        ).encode("utf-8")
        return (
            b'{"id": ' + id_json
            + b', "ok": true, "op": "' + request.op.encode("ascii")
            + b'", "result": ' + encoded + b"}\n"
        )

    def _resolve_host(self, request) -> EngineHost:
        if request.dataset is None:
            if len(self._hosts) == 1:
                return next(iter(self._hosts.values()))
            raise ProtocolError(
                "bad-request",
                f"this service hosts {len(self._hosts)} datasets; "
                f"the request must name one of {sorted(self._hosts)}",
            )
        host = self._hosts.get(request.dataset)
        if host is None:
            raise ProtocolError(
                "unknown-dataset",
                f"unknown dataset {request.dataset!r}; "
                f"hosted: {', '.join(sorted(self._hosts))}",
            )
        return host

    async def _dispatch(self, request) -> Dict[str, Any]:
        if request.op == "health":
            return {"status": "ok", "datasets": sorted(self._hosts)}
        if request.op == "stats":
            datasets = [
                await self._hosts[name].stats() for name in sorted(self._hosts)
            ]
            return {"service": self.stats(), "datasets": datasets}
        host = self._resolve_host(request)
        if request.op == "preview":
            return await host.preview(request.params)
        if request.op == "sweep":
            return await host.sweep(request.params)
        if request.op == "mutate":
            return await host.mutate(request.params)
        # "subscribe" parses but only writer-role services stream it.
        raise ProtocolError(
            "bad-request",
            f"op {request.op!r} is not supported by this service",
        )


class BackgroundServer:
    """Handle for a :class:`LineService` running in a daemon thread.

    Attributes
    ----------
    host, port:
        The bound address, ready for a
        :class:`~repro.serve.ServeClient`.
    service:
        The running service (its counters are safe to *read* from the
        caller's thread).
    """

    def __init__(self, service: LineService, thread: threading.Thread,
                 loop: asyncio.AbstractEventLoop, stop_event: asyncio.Event) -> None:
        self.service = service
        self.host, self.port = service.address
        self._thread = thread
        self._loop = loop
        self._stop_event = stop_event

    def stop(self, timeout: float = 10.0) -> None:
        """Shut the service down and join its thread."""
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop_event.set)
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "BackgroundServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def run_in_background(
    service: LineService, host: str = "127.0.0.1", port: int = 0
) -> BackgroundServer:
    """Start ``service`` on a daemon thread and wait until it is bound.

    The synchronous entry point tests, benchmarks and notebooks use:
    the event loop lives entirely in the background thread, and the
    returned :class:`BackgroundServer` exposes the ephemeral port plus
    ``stop()``.  Use as a context manager for deterministic teardown.

    Raises
    ------
    ServeError
        When the server fails to bind within 10 seconds (the underlying
        exception is chained).
    """
    started = threading.Event()
    box: Dict[str, Any] = {}

    def target() -> None:
        async def main() -> None:
            try:
                await service.start(host, port)
            except Exception as exc:
                raise ServeError("preview service failed to start") from exc
            box["loop"] = asyncio.get_running_loop()
            box["stop"] = stop_event = asyncio.Event()
            started.set()
            try:
                await stop_event.wait()
            finally:
                await service.aclose()

        try:
            asyncio.run(main())
        except ServeError as exc:
            # Hand the structured startup error to the waiting caller;
            # the daemon thread itself must exit quietly.
            box["error"] = exc
            started.set()

    thread = threading.Thread(
        target=target, name="repro-serve", daemon=True
    )
    thread.start()
    if not started.wait(timeout=10.0):
        raise ServeError("preview service failed to start")
    error = box.get("error")
    if error is not None:
        raise error
    return BackgroundServer(service, thread, box["loop"], box["stop"])
