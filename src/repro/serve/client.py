"""A small blocking client for the preview-table service.

:class:`ServeClient` speaks the JSON-line protocol over one TCP
connection from plain synchronous code — it is how the test suite and
``benchmarks/bench_serve.py`` drive the *real* socket path rather than
calling the hosts directly.  One request is one round trip; responses
arrive in request order on the connection.

.. code-block:: python

    with ServeClient(port=server.port) as client:
        client.health()
        result = client.preview(k=2, n=4)          # raises on error responses
        client.mutate_entity("fresh-entity", ["FILM"])
        stats = client.stats()

The convenience methods unwrap success responses to their ``result``
object and raise :class:`~repro.exceptions.ServeRequestError` (carrying
the wire error ``code``) on error responses; :meth:`request` returns the
raw response dict instead, and :meth:`send_raw` ships arbitrary bytes
for protocol edge-case tests.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, List, Optional

from ..exceptions import ServeError, ServeRequestError
from .protocol import MAX_FRAME_BYTES, encode_frame


class ServeClient:
    """One blocking JSON-line connection to a :class:`PreviewService`.

    Parameters
    ----------
    host, port:
        The service address (see
        :attr:`~repro.serve.BackgroundServer.port`).
    timeout:
        Socket timeout in seconds for connect and each response read.
    dataset:
        Default dataset name attached to every request (optional when
        the service hosts exactly one dataset).

    Raises
    ------
    OSError
        When the connection cannot be established.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 9400,
        timeout: float = 30.0,
        dataset: Optional[str] = None,
    ) -> None:
        self.dataset = dataset
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")
        self._next_id = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Wire
    # ------------------------------------------------------------------
    def send_raw(self, data: bytes) -> Dict[str, Any]:
        """Ship raw bytes and read one response frame (for protocol tests)."""
        self._send(data)
        return self._read_response()

    def _send(self, data: bytes) -> None:
        # The transport contract holds on both halves of a round trip:
        # a peer that hung up surfaces as ServeError here, not as a raw
        # BrokenPipeError that skips callers' `except ServeError`.
        try:
            self._sock.sendall(data)
        except socket.timeout as exc:
            raise ServeError("timed out sending a request frame") from exc
        except ConnectionError as exc:
            raise ServeError(f"connection failed mid-request: {exc}") from exc

    def _read_response(self) -> Dict[str, Any]:
        # Responses are not capped the way request frames are (a legal
        # sweep over a large domain can serialize past MAX_FRAME_BYTES),
        # so accumulate until the newline rather than trusting one
        # bounded readline not to truncate mid-frame.
        chunks = []
        while True:
            try:
                chunk = self._file.readline(MAX_FRAME_BYTES)
            except socket.timeout as exc:
                # Transport failures surface as ServeError, per the
                # request() contract — a raw socket.timeout would skip
                # every `except ServeError` a caller wrote.
                raise ServeError(
                    "timed out waiting for a response frame"
                ) from exc
            except ConnectionError as exc:
                raise ServeError(f"connection failed mid-response: {exc}") from exc
            if not chunk:
                if chunks:  # pragma: no cover - server died mid-frame
                    raise ServeError("connection closed mid-response")
                raise ServeError("server closed the connection")
            chunks.append(chunk)
            if chunk.endswith(b"\n"):
                break
        try:
            response = json.loads(b"".join(chunks).decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:  # pragma: no cover
            raise ServeError(f"undecodable response frame: {exc}") from exc
        if not isinstance(response, dict):  # pragma: no cover - server bug
            raise ServeError(f"response frame is not an object: {response!r}")
        return response

    def request(
        self,
        op: str,
        params: Optional[Dict[str, Any]] = None,
        dataset: Optional[str] = None,
        request_id: Any = None,
    ) -> Dict[str, Any]:
        """One raw round trip; returns the full response dict.

        ``request_id`` defaults to an auto-incrementing integer; the
        response's ``id`` must echo it (a mismatch means the connection
        was shared across threads, which this client does not support).

        Raises
        ------
        ServeError
            On transport failures or a response-id mismatch.
        """
        if request_id is None:
            self._next_id += 1
            request_id = self._next_id
        frame: Dict[str, Any] = {"op": op, "id": request_id}
        dataset = dataset if dataset is not None else self.dataset
        if dataset is not None:
            frame["dataset"] = dataset
        if params is not None:
            frame["params"] = params
        self._send(encode_frame(frame))
        response = self._read_response()
        if response.get("id") != request_id:
            raise ServeError(
                f"response id {response.get('id')!r} does not match request "
                f"id {request_id!r} (is this connection shared?)"
            )
        return response

    def _result(self, response: Dict[str, Any]) -> Dict[str, Any]:
        if response.get("ok"):
            return response["result"]
        error = response.get("error") or {}
        raise ServeRequestError(
            str(error.get("code", "internal")), str(error.get("message", ""))
        )

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def call(
        self,
        op: str,
        params: Optional[Dict[str, Any]] = None,
        dataset: Optional[str] = None,
    ) -> Dict[str, Any]:
        """One round trip, unwrapped to its ``result`` object.

        The generic form of the convenience methods below — used by the
        workload replayer, which ships recorded params dicts verbatim.

        Raises
        ------
        ServeRequestError
            With the wire error code on error responses.
        ServeError
            On transport failures.
        """
        return self._result(self.request(op, params, dataset))

    def health(self) -> Dict[str, Any]:
        """The service's health snapshot (status + hosted datasets)."""
        return self._result(self.request("health"))

    def preview(
        self,
        k: int,
        n: int,
        d: Optional[int] = None,
        mode: str = "tight",
        algorithm: str = "auto",
        dataset: Optional[str] = None,
        min_generation: Optional[int] = None,
    ) -> Dict[str, Any]:
        """One preview query; returns ``{"generation", "result"}``.

        ``min_generation`` is the read-your-writes token against a
        replicated deployment: a replica answers only once its graph
        has reached that generation (``lagging`` when it cannot in
        time).  Standalone services ignore it.

        Raises
        ------
        ServeRequestError
            With the wire code (``infeasible``, ``invalid-query``,
            ``timeout``, ``overloaded``, ``lagging``, ...) on error
            responses.
        """
        params: Dict[str, Any] = {"k": k, "n": n}
        if d is not None:
            params["d"] = d
            params["mode"] = mode
        if algorithm != "auto":
            params["algorithm"] = algorithm
        if min_generation is not None:
            params["min_generation"] = min_generation
        return self._result(self.request("preview", params, dataset))

    def sweep(
        self,
        k: int,
        ns: List[int],
        d: Optional[int] = None,
        mode: str = "tight",
        algorithm: str = "auto",
        dataset: Optional[str] = None,
        min_generation: Optional[int] = None,
    ) -> Dict[str, Any]:
        """A budget sweep; returns ``{"generation", "results"}``.

        ``min_generation`` has the same read-your-writes semantics as
        on :meth:`preview`.
        """
        params: Dict[str, Any] = {"k": k, "ns": list(ns)}
        if d is not None:
            params["d"] = d
            params["mode"] = mode
        if algorithm != "auto":
            params["algorithm"] = algorithm
        if min_generation is not None:
            params["min_generation"] = min_generation
        return self._result(self.request("sweep", params, dataset))

    def mutate_entity(
        self, entity: str, types: List[str], dataset: Optional[str] = None
    ) -> Dict[str, Any]:
        """Add (or extend) an entity; returns the new ``generation``."""
        params = {"kind": "entity", "entity": entity, "types": list(types)}
        return self._result(self.request("mutate", params, dataset))

    def mutate_relationship(
        self,
        source: str,
        target: str,
        name: str,
        source_type: str,
        target_type: str,
        dataset: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Add one relationship instance; returns the new ``generation``."""
        params = {
            "kind": "relationship",
            "source": source,
            "target": target,
            "name": name,
            "source_type": source_type,
            "target_type": target_type,
        }
        return self._result(self.request("mutate", params, dataset))

    def stats(self) -> Dict[str, Any]:
        """Service + per-dataset counters (engine cache, coalescer, ...)."""
        return self._result(self.request("stats"))
