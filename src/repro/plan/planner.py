"""The adaptive execution planner: calibrated serial/sharded dispatch.

:class:`Planner` answers the question every subset-evaluation call site
asks — *is this batch worth worker processes, and if so, how should it
be cut into shards?* — from measured signals instead of one global
constant.  Four modes, selected by ``REPRO_PLAN`` (or in-process via
:func:`use_mode`):

``auto`` (default)
    Cost-model planning.  While the model is cold the decision falls
    back to the PR 6 static threshold; once both the serial and sharded
    cost lines of the active kernel backend are fitted
    (:meth:`~repro.plan.cost_model.CostModel.warm`), the cheaper
    predicted strategy wins.  A single-core affinity mask still vetoes
    sharding outright — workers pinned to one core serialize, which is
    hardware, not a heuristic the model should relearn per process.
``serial``
    Never shard; every batch runs the serial batched kernel inline.
``sharded``
    Always shard multi-subset batches when ``jobs > 1`` — the pre-PR 6
    behavior, kept forceable for benchmarks and bisection.
``static``
    Exactly the PR 6 planner: subset count against
    :func:`dispatch_threshold`, single-core veto, no model, no sweep
    batching, ``min(jobs, n)`` equal shards.

Every decision increments a process-wide counter
(:func:`decision_counts`): ``serial`` / ``sharded`` / ``batched_sweep``
for the chosen strategy, ``model_warm`` vs ``fallback`` for how an
``auto`` decision was reached, and ``vetoed_single_core`` when the
affinity veto forced the answer.  :class:`~repro.engine.PreviewEngine`
attributes deltas of these counters to its queries (``cache_info()``'s
``plan_decisions``) and the benchmarks record them alongside wall
times.

Planning never changes answers — only where and in what chunks the same
kernel arithmetic runs — so every mode is bit-identical to every other
(asserted by ``tests/test_plan.py`` and the golden workload trace).
"""

from __future__ import annotations

import math
import os
import pickle
import threading
import time
import weakref
from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence, Tuple

from .. import config
from ..exceptions import KernelError, PlanError
from .cost_model import DEFAULT_WINDOW, CostModel

#: Environment override for the sharding crossover point (declared in
#: :mod:`repro.config`; the name is kept here for subprocess spawners).
ENV_THRESHOLD = config.DISPATCH_THRESHOLD.name

#: Environment variable selecting the planner mode (declared in
#: :mod:`repro.config`).
ENV_PLAN = config.PLAN.name

#: Below this many subsets, process-pool dispatch costs more than the
#: serial kernel call it would replace (measured on the bench-mixed
#: workload trace; see docs/execution-planner.md).
DEFAULT_DISPATCH_THRESHOLD = 4096

#: The planner modes ``REPRO_PLAN`` accepts.
PLAN_MODES = ("auto", "serial", "sharded", "static")

#: Adaptive shard-sizing target: this many shards per worker, so pool
#: scheduling absorbs stragglers (the last shard is at most ``1/target``
#: of the work instead of ``1/jobs``).
OVERSUBSCRIPTION = 2

#: A shard's predicted compute time must be at least this multiple of
#: the fitted per-shard fixed cost, or the planner stops splitting —
#: shards smaller than that are pure dispatch overhead.
MIN_SHARD_PAYOFF = 8.0

#: In-process mode override (managed by :func:`use_mode`); None defers
#: to the ``REPRO_PLAN`` environment knob.
_FORCED_MODE: Optional[str] = None

#: Cached affinity probe (satellite fix: ``os.sched_getaffinity`` was
#: re-probed on every ``should_shard`` call).  Reset via
#: :func:`reset_plan_caches`.
_CPU_CACHE: Optional[int] = None

#: Cached parsed dispatch threshold, keyed by the raw env value so a
#: test's ``monkeypatch.setenv`` is still observed without re-parsing
#: on every decision.
_THRESHOLD_CACHE: Optional[Tuple[Optional[str], int]] = None


def plan_mode() -> str:
    """The effective planner mode (in-process override, else ``REPRO_PLAN``).

    Raises
    ------
    PlanError
        When ``REPRO_PLAN`` names an unknown mode.
    """
    if _FORCED_MODE is not None:
        return _FORCED_MODE
    raw = (config.raw_knob(ENV_PLAN) or "auto").strip().lower() or "auto"
    if raw not in PLAN_MODES:
        raise PlanError(
            f"{ENV_PLAN} must be one of {', '.join(PLAN_MODES)}, got {raw!r}"
        )
    return raw


@contextmanager
def use_mode(mode: str):
    """Temporarily force a planner mode in-process (tests, bench legs).

    Raises
    ------
    PlanError
        For an unknown mode name.
    """
    global _FORCED_MODE
    if mode not in PLAN_MODES:
        raise PlanError(
            f"unknown planner mode {mode!r}; expected one of "
            f"{', '.join(PLAN_MODES)}"
        )
    previous = _FORCED_MODE
    _FORCED_MODE = mode
    try:
        yield
    finally:
        _FORCED_MODE = previous


def usable_cpus() -> int:
    """CPU cores this process may actually run on (cached per process).

    The affinity mask is a process property that practically never
    changes mid-run, and ``should_shard`` sits on the per-query hot
    path — so the probe happens once and :func:`reset_plan_caches` is
    the test-visible way to force a re-probe.
    """
    global _CPU_CACHE
    if _CPU_CACHE is None:
        try:
            _CPU_CACHE = len(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - non-Linux
            _CPU_CACHE = os.cpu_count() or 1
    return _CPU_CACHE


def dispatch_threshold() -> int:
    """The effective sharding threshold (env override or default).

    The parse is memoized against the raw environment value, so the
    hot path re-reads ``os.environ`` (tests that ``setenv`` stay
    honored) but only re-parses when the value actually changed.

    Raises
    ------
    KernelError
        When ``REPRO_DISPATCH_THRESHOLD`` is set but not a non-negative
        integer (the historical contract of the kernel planner).
    """
    global _THRESHOLD_CACHE
    raw = config.raw_knob(ENV_THRESHOLD)
    if _THRESHOLD_CACHE is not None and _THRESHOLD_CACHE[0] == raw:
        return _THRESHOLD_CACHE[1]
    if raw is None:
        value = DEFAULT_DISPATCH_THRESHOLD
    else:
        try:
            value = int(raw)
        except ValueError:
            raise KernelError(
                f"{ENV_THRESHOLD} must be an integer, got {raw!r}"
            ) from None
        if value < 0:
            raise KernelError(f"{ENV_THRESHOLD} must be >= 0, got {value}")
    _THRESHOLD_CACHE = (raw, value)
    return value


def reset_plan_caches() -> None:
    """Drop the cached affinity probe and parsed threshold (test hook)."""
    global _CPU_CACHE, _THRESHOLD_CACHE
    _CPU_CACHE = None
    _THRESHOLD_CACHE = None


def estimated_subsets(eligible_count: int, k: int) -> int:
    """Upper bound on the qualifying k-subset count: ``C(eligible, k)``."""
    if k < 0 or k > eligible_count:
        return 0
    return math.comb(eligible_count, k)


def _active_backend_name() -> str:
    # Imported lazily: repro.kernel imports this module at load time,
    # so the dependency must stay call-time-only to avoid a cycle.
    from .. import kernel

    return kernel.backend_name()


class SweepPlan:
    """How a sweep's pending profile-build groups should execute.

    Positional indices into the planner's input ``group_sizes``:
    ``sharded`` groups are each big enough for their own pool dispatch,
    ``batched`` groups are individually sub-threshold but worth one
    *combined* dispatch (the sweep-point batching the static planner
    could never do), and ``serial`` groups run inline.
    """

    __slots__ = ("sharded", "batched", "serial")

    def __init__(
        self, sharded: List[int], batched: List[int], serial: List[int]
    ) -> None:
        self.sharded = sharded
        self.batched = batched
        self.serial = serial


class Planner:
    """Cost-model-backed execution planning with decision accounting.

    One process-wide instance (see :func:`get_planner`) serves every
    call site; all methods are thread-safe (serve hosts plan from their
    worker threads concurrently).
    """

    def __init__(self, model: Optional[CostModel] = None) -> None:
        self.model = model if model is not None else CostModel(
            window=config.plan_window()
        )
        self._lock = threading.Lock()
        self._decisions: Dict[str, int] = {
            "serial": 0,
            "sharded": 0,
            "batched_sweep": 0,
            "model_warm": 0,
            "fallback": 0,
            "vetoed_single_core": 0,
        }
        #: Snapshot objects already measured (id -> weakref to the
        #: snapshot), FIFO-bounded — measuring costs one pickle per
        #: snapshot lifetime, so it must never repeat per dispatch.
        #: The weakref guards against CPython id reuse: a hit only
        #: counts when the stored reference still resolves to the very
        #: object being asked about, so a fresh snapshot allocated at a
        #: dead snapshot's address is measured independently.
        #: Unweakrefable snapshots (plain dicts in tests) are memoized
        #: by strong reference instead — holding the object pins its id,
        #: so reuse is equally impossible, at the cost of keeping at
        #: most 16 of them alive.
        self._measured_snapshots: Dict[int, object] = {}

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def _count(self, *keys: str) -> None:
        with self._lock:
            for key in keys:
                self._decisions[key] = self._decisions.get(key, 0) + 1

    def _static_verdict(self, subset_count: int, jobs: int) -> bool:
        """The PR 6 rule: threshold plus single-core affinity veto."""
        if jobs <= 1 or min(jobs, usable_cpus()) <= 1:
            return False
        return subset_count >= dispatch_threshold()

    def should_shard(self, subset_count: int, jobs: int) -> bool:
        """Whether ``subset_count`` subsets justify ``jobs`` workers.

        The answer depends on the mode (see the module docstring); the
        result is recorded in the decision counters either way.  Serial
        and sharded execution are bit-identical, so this only moves
        wall time.
        """
        mode = plan_mode()
        if mode == "serial":
            self._count("serial")
            return False
        if mode == "sharded":
            if jobs > 1 and subset_count > 1:
                self._count("sharded")
                return True
            self._count("serial")
            return False
        if jobs <= 1 or subset_count <= 1:
            self._count("serial")
            return False
        if mode == "static":
            verdict = self._static_verdict(subset_count, jobs)
            self._count("sharded" if verdict else "serial")
            return verdict
        # auto
        if min(jobs, usable_cpus()) <= 1:
            self._count("serial", "vetoed_single_core")
            return False
        verdict, how = self._auto_verdict(subset_count)
        self._count("sharded" if verdict else "serial", how)
        return verdict

    def _auto_verdict(self, subset_count: int) -> Tuple[bool, str]:
        """(shard?, ``model_warm``/``fallback``) for a vetted auto call."""
        backend = _active_backend_name()
        with self._lock:
            if self.model.warm(backend):
                serial_cost = self.model.predict(
                    "serial", backend, subset_count
                )
                sharded_cost = self.model.predict(
                    "sharded", backend, subset_count
                )
                return sharded_cost < serial_cost, "model_warm"
        return subset_count >= dispatch_threshold(), "fallback"

    def plan_sweep(
        self, group_sizes: Sequence[int], jobs: int
    ) -> SweepPlan:
        """Assign a sweep's pending profile-build groups to strategies.

        ``group_sizes[i]`` is the qualifying-subset count of pending
        group ``i``.  Groups worth their own pool dispatch go to
        ``sharded``; under ``auto``, the remaining small groups are
        *batched* into one combined dispatch when their total justifies
        the pool — the case the per-group static rule always ran
        serially, even when the sweep as a whole had the work to
        amortize the workers.
        """
        mode = plan_mode()
        indices = list(range(len(group_sizes)))
        if not indices:
            return SweepPlan([], [], [])
        if (
            mode == "serial"
            or jobs <= 1
            or (mode != "sharded" and min(jobs, usable_cpus()) <= 1)
        ):
            if mode == "auto" and jobs > 1 and usable_cpus() <= 1:
                self._count("vetoed_single_core")
            for _ in indices:
                self._count("serial")
            return SweepPlan([], [], indices)
        if mode == "sharded":
            sharded = [i for i in indices if group_sizes[i] > 1]
            serial = [i for i in indices if group_sizes[i] <= 1]
            for _ in sharded:
                self._count("sharded")
            for _ in serial:
                self._count("serial")
            return SweepPlan(sharded, [], serial)
        sharded: List[int] = []
        small: List[int] = []
        for i in indices:
            if mode == "static":
                verdict = self._static_verdict(group_sizes[i], jobs)
            else:
                verdict, how = self._auto_verdict(group_sizes[i])
                self._count(how)
            (sharded if verdict else small).append(i)
            self._count("sharded" if verdict else "serial")
        if mode == "static" or len(small) < 2:
            return SweepPlan(sharded, [], small)
        total = sum(group_sizes[i] for i in small)
        combined, how = self._auto_verdict(total)
        self._count(how)
        if combined:
            self._count("batched_sweep")
            return SweepPlan(sharded, small, [])
        return SweepPlan(sharded, [], small)

    # ------------------------------------------------------------------
    # Shard sizing
    # ------------------------------------------------------------------
    def shard_layout(self, subset_count: int, jobs: int) -> List[int]:
        """Shard sizes for one dispatch (sizes sum to ``subset_count``).

        Static and forced modes reproduce the PR 6 tiling —
        ``min(jobs, n)`` near-equal chunks.  Under ``auto`` the layout
        oversubscribes the pool :data:`OVERSUBSCRIPTION`-fold so the
        scheduler can backfill around stragglers, and a warm per-shard
        cost fit caps the split: no shard shrinks below the size whose
        predicted compute still pays :data:`MIN_SHARD_PAYOFF` times the
        fitted per-shard fixed cost.  The remainder lands on the *first*
        shards, so the final shard — the one that would otherwise
        straggle — is never the largest.

        Shard geometry never affects results: the executor's reduction
        carries global subset indices, so any tiling reduces to the
        same winner.
        """
        if subset_count <= 0:
            return []
        jobs = max(1, jobs)
        if jobs == 1 or subset_count == 1:
            return [subset_count]
        shards = min(jobs, subset_count)
        if plan_mode() == "auto":
            target = min(subset_count, jobs * OVERSUBSCRIPTION)
            with self._lock:
                fitted = self.model.fit("shard", _active_backend_name())
            if fitted is not None and fitted.rate > 0.0 and fitted.setup > 0.0:
                # Largest shard count whose per-shard compute still
                # dwarfs the fixed per-shard cost.
                payoff_size = math.ceil(
                    MIN_SHARD_PAYOFF * fitted.setup / fitted.rate
                )
                affordable = max(1, subset_count // max(payoff_size, 1))
                shards = max(min(target, affordable), min(jobs, subset_count))
            else:
                shards = target
        base, remainder = divmod(subset_count, shards)
        return [
            base + (1 if shard < remainder else 0) for shard in range(shards)
        ]

    # ------------------------------------------------------------------
    # Observation hooks
    # ------------------------------------------------------------------
    def observe(
        self, signal: str, backend: str, subsets: int, seconds: float
    ) -> None:
        """Record one timing observation into the cost model."""
        with self._lock:
            self.model.observe(signal, backend, subsets, seconds)

    def observe_snapshot_cost(self, snapshot: object) -> None:
        """Measure one snapshot's pickle bytes/seconds (once per object).

        Called by the sharded executor right before a pool dispatch; the
        measurement costs one extra ``pickle.dumps``, so it is keyed by
        object identity and never repeated for a snapshot the executor
        re-ships across calls.  A memo hit requires the stored weak
        reference to resolve to ``snapshot`` itself — ``id()`` alone is
        not enough, because CPython recycles addresses after GC and a
        fresh snapshot must never inherit a dead snapshot's cost.
        """
        key = id(snapshot)
        with self._lock:
            entry = self._measured_snapshots.get(key)
            if entry is not None:
                target = entry() if isinstance(entry, weakref.ref) else entry
                if target is snapshot:
                    return
        try:
            memo_entry: object = weakref.ref(snapshot)
        except TypeError:
            # Unweakrefable: memoize the object itself (pins the id).
            memo_entry = snapshot
        start = time.perf_counter()
        payload = pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL)
        elapsed = time.perf_counter() - start
        with self._lock:
            if (
                key not in self._measured_snapshots
                and len(self._measured_snapshots) >= 16
            ):
                oldest = next(iter(self._measured_snapshots))
                del self._measured_snapshots[oldest]
            self._measured_snapshots[key] = memo_entry
            self.model.observe_snapshot(len(payload), elapsed)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def decision_counts(self) -> Dict[str, int]:
        """A copy of the cumulative decision counters."""
        with self._lock:
            return dict(self._decisions)

    def stats(self) -> Dict[str, object]:
        """JSON-ready planner state: mode, decisions, model warmth."""
        backend = _active_backend_name()
        with self._lock:
            return {
                "mode": plan_mode(),
                "decisions": dict(self._decisions),
                "model": {
                    "backend": backend,
                    "warm": self.model.warm(backend),
                    "observations": self.model.observation_counts(),
                    "snapshot": self.model.snapshot_stats(),
                },
            }

    def reset_stats(self) -> None:
        """Zero the decision counters (benchmark legs isolate with this)."""
        with self._lock:
            for key in self._decisions:
                self._decisions[key] = 0


#: The process-wide planner every call site consults (lazily built so
#: ``REPRO_PLAN_WINDOW`` is read at first use, not import).
_PLANNER: Optional[Planner] = None
_PLANNER_LOCK = threading.Lock()


def get_planner() -> Planner:
    """The process-wide :class:`Planner`, created on first use."""
    global _PLANNER
    if _PLANNER is None:
        with _PLANNER_LOCK:
            if _PLANNER is None:
                _PLANNER = Planner()
    return _PLANNER


def reset_planner() -> None:
    """Replace the process-wide planner with a fresh, cold one (tests)."""
    global _PLANNER
    with _PLANNER_LOCK:
        _PLANNER = None


def should_shard(subset_count: int, jobs: int) -> bool:
    """Module-level convenience for :meth:`Planner.should_shard`."""
    return get_planner().should_shard(subset_count, jobs)


def shard_layout(subset_count: int, jobs: int) -> List[int]:
    """Module-level convenience for :meth:`Planner.shard_layout`."""
    return get_planner().shard_layout(subset_count, jobs)


def plan_sweep(group_sizes: Sequence[int], jobs: int) -> SweepPlan:
    """Module-level convenience for :meth:`Planner.plan_sweep`."""
    return get_planner().plan_sweep(group_sizes, jobs)


def observe_serial(backend: str, subsets: int, seconds: float) -> None:
    """Record one serial batched-kernel dispatch timing."""
    get_planner().observe("serial", backend, subsets, seconds)


def observe_sharded(
    backend: str, subsets: int, seconds: float, shards: int
) -> None:
    """Record one whole sharded dispatch timing (parent-side wall)."""
    get_planner().observe("sharded", backend, subsets, seconds)


def observe_shard(backend: str, subsets: int, seconds: float) -> None:
    """Record one worker shard's compute timing (measured in-worker)."""
    get_planner().observe("shard", backend, subsets, seconds)


def observe_lowering(backend: str, subsets: int, seconds: float) -> None:
    """Record one columnar lowering (the serial path's per-call setup)."""
    get_planner().observe("lower", backend, subsets, seconds)


def observe_snapshot_cost(snapshot: object) -> None:
    """Measure one snapshot's pickle cost (once per object identity)."""
    get_planner().observe_snapshot_cost(snapshot)


def decision_counts() -> Dict[str, int]:
    """The process-wide cumulative decision counters."""
    return get_planner().decision_counts()


def plan_stats() -> Dict[str, object]:
    """The process-wide planner's JSON-ready state."""
    return get_planner().stats()


def reset_plan_stats() -> None:
    """Zero the process-wide decision counters."""
    get_planner().reset_stats()
