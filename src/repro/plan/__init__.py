"""Adaptive execution planning for subset scoring (``repro.plan``).

The subsystem that grew out of ``repro.kernel.plan``'s single static
threshold: a :class:`CostModel` of measured per-backend timings, a
:class:`Planner` that picks serial / sharded / batched-sweep execution
per call site, adaptive shard sizing, and process-wide decision
counters surfaced through ``PreviewEngine.cache_info()`` and the serve
``stats`` op.  ``REPRO_PLAN`` (or :func:`use_mode`) forces any mode;
all modes are bit-identical in results.  See
``docs/execution-planner.md``.
"""

from __future__ import annotations

from .cost_model import DEFAULT_WINDOW, MIN_SAMPLES, CostModel, LinearFit
from .planner import (
    DEFAULT_DISPATCH_THRESHOLD,
    ENV_PLAN,
    ENV_THRESHOLD,
    MIN_SHARD_PAYOFF,
    OVERSUBSCRIPTION,
    PLAN_MODES,
    Planner,
    SweepPlan,
    decision_counts,
    dispatch_threshold,
    estimated_subsets,
    get_planner,
    observe_lowering,
    observe_serial,
    observe_shard,
    observe_sharded,
    observe_snapshot_cost,
    plan_mode,
    plan_stats,
    plan_sweep,
    reset_plan_caches,
    reset_plan_stats,
    reset_planner,
    shard_layout,
    should_shard,
    usable_cpus,
    use_mode,
)

__all__ = [
    "CostModel",
    "LinearFit",
    "Planner",
    "SweepPlan",
    "DEFAULT_DISPATCH_THRESHOLD",
    "DEFAULT_WINDOW",
    "ENV_PLAN",
    "ENV_THRESHOLD",
    "MIN_SAMPLES",
    "MIN_SHARD_PAYOFF",
    "OVERSUBSCRIPTION",
    "PLAN_MODES",
    "decision_counts",
    "dispatch_threshold",
    "estimated_subsets",
    "get_planner",
    "observe_lowering",
    "observe_serial",
    "observe_shard",
    "observe_sharded",
    "observe_snapshot_cost",
    "plan_mode",
    "plan_stats",
    "plan_sweep",
    "reset_plan_caches",
    "reset_plan_stats",
    "reset_planner",
    "shard_layout",
    "should_shard",
    "usable_cpus",
    "use_mode",
]
