"""The planner's memory: ring-buffered timings and fitted linear costs.

Every execution strategy the planner can pick has a cost of the shape
``setup + rate * subsets`` — a fixed dispatch overhead (columnar
lowering for the serial kernel; snapshot pickling, pool latency and
result transfer for the sharded executor) plus a per-subset scoring
rate.  :class:`CostModel` records real measurements of both strategies
as ``(subsets, seconds)`` observations in bounded ring buffers, keyed by
``(signal, kernel backend)``, and fits each buffer with an ordinary
least-squares line.  The fit is the prediction: once both the serial and
the sharded signal of the active backend have enough *diverse*
observations (:data:`MIN_SAMPLES` points spanning at least two distinct
batch sizes), the model is *warm* and the planner trusts
``predict(signal, backend, n)`` over the static threshold.

Signals recorded by the timing hooks
(:func:`repro.plan.observe_serial` and friends):

``serial``
    One batched kernel dispatch in the calling process — timed around
    :func:`repro.kernel.best_allocation` and the executor's inline path.
``sharded``
    One whole sharded dispatch, parent-side wall time — snapshot
    pickling, shard transfer, worker compute and reduction included
    (timed in :meth:`repro.parallel.ShardedExecutor.best_allocation`).
``shard``
    One worker's compute time for its own shard, measured inside the
    worker and shipped back with the shard result.  Its fitted *rate* is
    the pure per-subset scoring speed and its *setup* the per-shard
    fixed cost — the two numbers adaptive shard sizing needs.
``lower``
    One columnar lowering of a pool/snapshot inside a kernel backend
    (the serial path's per-call setup, timed in ``lower()``).

Ring buffers keep the model adaptive: a machine whose load changes (or
a benchmark that switches backends) overwrites stale observations after
``window`` new ones, instead of averaging against them forever.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

#: Observations a signal needs before its fit is trusted (and they must
#: span at least two distinct batch sizes, or the slope is unidentified).
MIN_SAMPLES = 4

#: Default ring-buffer capacity per ``(signal, backend)`` series
#: (overridable via ``REPRO_PLAN_WINDOW``, see :mod:`repro.config`).
DEFAULT_WINDOW = 64


class LinearFit:
    """A fitted ``seconds = setup + rate * subsets`` cost line.

    Both coefficients are clamped non-negative: a negative setup or rate
    is measurement noise (costs cannot shrink with more work), and
    clamping keeps predictions monotone in the batch size.
    """

    __slots__ = ("setup", "rate", "samples")

    def __init__(self, setup: float, rate: float, samples: int) -> None:
        self.setup = max(setup, 0.0)
        self.rate = max(rate, 0.0)
        self.samples = samples

    def predict(self, subsets: int) -> float:
        """Predicted wall seconds for a batch of ``subsets`` subsets."""
        return self.setup + self.rate * subsets

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LinearFit(setup={self.setup:.6f}, rate={self.rate:.3e}, "
            f"samples={self.samples})"
        )


def _least_squares(points: List[Tuple[int, float]]) -> Optional[LinearFit]:
    """Ordinary least squares over ``(subsets, seconds)`` points.

    Returns None when the points cannot identify a slope — fewer than
    :data:`MIN_SAMPLES` observations, or all at one batch size.
    """
    if len(points) < MIN_SAMPLES:
        return None
    n = float(len(points))
    mean_x = sum(x for x, _ in points) / n
    mean_y = sum(y for _, y in points) / n
    var = sum((x - mean_x) ** 2 for x, _ in points)
    if var <= 0.0:
        return None  # one distinct batch size: slope unidentified
    cov = sum((x - mean_x) * (y - mean_y) for x, y in points)
    rate = cov / var
    setup = mean_y - rate * mean_x
    return LinearFit(setup=setup, rate=rate, samples=len(points))


class CostModel:
    """Ring-buffered timing observations with least-squares cost fits.

    Not thread-safe on its own: the owning :class:`~repro.plan.Planner`
    serializes access (observations arrive from serve worker threads and
    benchmark loops alike).

    Parameters
    ----------
    window:
        Ring-buffer capacity per ``(signal, backend)`` series; older
        observations are evicted FIFO once a series is full.
    """

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        if window < MIN_SAMPLES:
            raise ValueError(
                f"cost-model window must be >= {MIN_SAMPLES}, got {window}"
            )
        self.window = window
        self._series: Dict[Tuple[str, str], Deque[Tuple[int, float]]] = {}
        self._fits: Dict[Tuple[str, str], Optional[LinearFit]] = {}
        #: Snapshot pickling measurements: (bytes, seconds) ring.
        self._snapshots: Deque[Tuple[int, float]] = deque(maxlen=window)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def observe(
        self, signal: str, backend: str, subsets: int, seconds: float
    ) -> None:
        """Record one ``(subsets, seconds)`` observation for a series."""
        if subsets <= 0 or seconds < 0.0:
            return  # degenerate measurements carry no cost information
        key = (signal, backend)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = deque(maxlen=self.window)
        series.append((subsets, seconds))
        self._fits.pop(key, None)  # lazily refit on next read

    def observe_snapshot(self, payload_bytes: int, seconds: float) -> None:
        """Record one snapshot pickling measurement (bytes, seconds)."""
        if payload_bytes <= 0 or seconds < 0.0:
            return
        self._snapshots.append((payload_bytes, seconds))

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def fit(self, signal: str, backend: str) -> Optional[LinearFit]:
        """The fitted cost line for one series, or None while cold."""
        key = (signal, backend)
        if key not in self._fits:
            series = self._series.get(key)
            self._fits[key] = (
                _least_squares(list(series)) if series else None
            )
        return self._fits[key]

    def predict(
        self, signal: str, backend: str, subsets: int
    ) -> Optional[float]:
        """Predicted seconds for a batch, or None while the series is cold."""
        fitted = self.fit(signal, backend)
        if fitted is None:
            return None
        return fitted.predict(subsets)

    def warm(self, backend: str) -> bool:
        """Whether serial *and* sharded predictions exist for ``backend``.

        This is the planner's "trust the model" bar: choosing between
        the two strategies needs a defensible estimate of both.
        """
        return (
            self.fit("serial", backend) is not None
            and self.fit("sharded", backend) is not None
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def observation_counts(self) -> Dict[str, int]:
        """Per-series observation counts, keyed ``"signal/backend"``."""
        return {
            f"{signal}/{backend}": len(series)
            for (signal, backend), series in sorted(self._series.items())
        }

    def snapshot_stats(self) -> Dict[str, float]:
        """Mean snapshot pickle size/time over the recorded window."""
        if not self._snapshots:
            return {"samples": 0, "mean_bytes": 0.0, "mean_seconds": 0.0}
        count = len(self._snapshots)
        return {
            "samples": count,
            "mean_bytes": sum(b for b, _ in self._snapshots) / count,
            "mean_seconds": sum(s for _, s in self._snapshots) / count,
        }

    def reset(self) -> None:
        """Drop every observation and fit (benchmark leg isolation)."""
        self._series.clear()
        self._fits.clear()
        self._snapshots.clear()
