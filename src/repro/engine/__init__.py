"""Registry-dispatched, cache-aware preview query engine.

The engine layer sits between the discovery algorithms (:mod:`repro.core`)
and serving surfaces (CLI, benchmarks, :mod:`repro.ext.incremental`):
one :class:`PreviewEngine` per dataset answers single
:class:`PreviewQuery` requests and ``sweep()`` batches, memoizing results
and reusing pruned candidate state across sweep points.
"""

from .engine import PreviewEngine
from .query import PreviewQuery

__all__ = [
    "PreviewEngine",
    "PreviewQuery",
]
