"""Query specifications for the preview engine.

A :class:`PreviewQuery` is the declarative form of one
:func:`~repro.core.discovery.discover_preview` call: the size constraint
``(k, n)``, an optional distance constraint ``(d, mode)`` and the
algorithm name (``"auto"`` resolves through the
:data:`~repro.core.registry.DISCOVERY_ALGORITHMS` registry).  Queries are
immutable and hashable so the engine can memoize their results; a
parameter sweep is just an iterable of queries (see
:meth:`PreviewQuery.grid`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Tuple

from ..core.constraints import DistanceConstraint, SizeConstraint
from ..core.registry import constraint_shape
from ..exceptions import DiscoveryError


@dataclass(frozen=True)
class PreviewQuery:
    """One preview request: ``(k, n)`` size, optional distance, algorithm.

    Examples
    --------
    Queries are immutable values; :meth:`grid` builds sweep batches in
    deterministic order:

    >>> PreviewQuery(k=3, n=9, d=2, mode="tight").describe()
    'k=3, n=9, tight d=2'
    >>> [q.n for q in PreviewQuery.grid(ks=(3,), ns=range(8, 11))]
    [8, 9, 10]
    """

    k: int
    n: int
    d: Optional[int] = None
    mode: str = "tight"
    algorithm: str = "auto"

    def size(self) -> SizeConstraint:
        """The validated size constraint (raises on malformed ``k``/``n``)."""
        return SizeConstraint(k=self.k, n=self.n)

    def distance(self) -> Optional[DistanceConstraint]:
        """The validated distance constraint, or None for concise queries."""
        if self.d is None:
            return None
        return DistanceConstraint.from_mode(self.d, self.mode)

    def shape(self) -> str:
        """The Definition-2 constraint shape (concise/tight/diverse)."""
        return constraint_shape(self.distance())

    def cache_key(self) -> Tuple:
        """Hashable constraint identity for memoization.

        ``mode`` is dropped for concise queries — a query's results do
        not depend on the mode when there is no distance constraint.
        The algorithm is deliberately absent: the engine composes this
        key with the *resolved* :class:`AlgorithmSpec`, so ``"auto"``
        and its resolved name share one memo entry.
        """
        mode = self.mode if self.d is not None else None
        return (self.k, self.n, self.d, mode)

    def to_params(self) -> dict:
        """The serve-shaped wire params dict of this query.

        The inverse of :func:`repro.serve.parse_query` — defaults are
        omitted, so the dict is minimal and round-trips exactly; the
        workload recorder uses it to write queries into traces in the
        same shape the serving protocol speaks.

        >>> PreviewQuery(k=2, n=5).to_params()
        {'k': 2, 'n': 5}
        >>> PreviewQuery(k=3, n=9, d=2, mode="diverse").to_params()
        {'k': 3, 'n': 9, 'd': 2, 'mode': 'diverse'}
        """
        params: dict = {"k": self.k, "n": self.n}
        if self.d is not None:
            params["d"] = self.d
            params["mode"] = self.mode
        if self.algorithm != "auto":
            params["algorithm"] = self.algorithm
        return params

    def describe(self) -> str:
        """Human-readable one-line form, used in logs and error messages."""
        text = f"k={self.k}, n={self.n}"
        if self.d is not None:
            text += f", {self.mode} d={self.d}"
        return text

    @classmethod
    def grid(
        cls,
        ks: Iterable[int],
        ns: Iterable[int],
        distances: Iterable[Optional[Tuple[int, str]]] = (None,),
        algorithm: str = "auto",
    ) -> Iterator["PreviewQuery"]:
        """Yield the cross product of parameters, in deterministic order.

        ``distances`` entries are ``(d, mode)`` pairs or None for concise
        points — the shape of the paper's Fig. 8/9 efficiency sweeps.

        Axes are materialized and validated eagerly: an empty axis —
        typically an exhausted generator or an empty ``range`` — would
        silently produce a zero-point sweep that benches then report as
        vacuous success, so it raises :class:`DiscoveryError` instead.
        """
        ks = tuple(ks)
        ns = tuple(ns)
        distances = tuple(distances)
        for axis, name in ((ks, "ks"), (ns, "ns"), (distances, "distances")):
            if not axis:
                raise DiscoveryError(
                    f"grid axis {name!r} is empty — a sweep over zero points "
                    "is almost certainly a bug (exhausted generator or "
                    "empty range?)"
                )

        def points() -> Iterator["PreviewQuery"]:
            for spec in distances:
                for k in ks:
                    for n in ns:
                        if spec is None:
                            yield cls(k=k, n=n, algorithm=algorithm)
                        else:
                            d, mode = spec
                            yield cls(k=k, n=n, d=d, mode=mode, algorithm=algorithm)

        return points()
