"""The preview engine: registry-dispatched, cache-aware query execution.

:class:`PreviewEngine` hoists everything the per-call
:func:`~repro.core.discovery.discover_preview` facade cannot share out of
the request path, the way multi-query database engines hoist common
sub-plans out of per-query execution:

* **Scoring state** — one :class:`~repro.scoring.ScoringContext` (and its
  :class:`~repro.scoring.CandidatePool` of sorted Γτ arrays and prefix
  sums) serves every query;
* **Result memoization** — :class:`DiscoveryResult`\\ s are cached per
  ``(generation, query)``, so repeated queries — the common case under
  preview-serving traffic — are O(1);
* **Sweep state reuse** — for distance-constrained (tight/diverse)
  queries answered by the Apriori algorithm, the compatibility k-cliques
  and the per-subset k-way-merge *allocation profiles* depend only on
  ``(k, d, mode)``, not on ``n``.  The engine computes them once and
  answers every ``n`` along a Fig. 9-style sweep by reading a prefix of
  each profile's cumulative-score array — byte-identical results to a
  fresh :func:`apriori_discover` call at a fraction of the cost;
* **Invalidation** — when constructed over a generation-tracked source
  (:class:`~repro.ext.incremental.IncrementalEntityGraph`), the caches
  are synchronized with the source's ``generation`` counter.  A source
  that additionally exposes the mutation changelog (``dirty_since``)
  gets *type-scoped* invalidation: every memo entry is keyed with the
  key-type dependency set of its :class:`DiscoveryResult`, and a
  non-structural mutation evicts only the entries whose dependency set
  intersects the dirty types — untouched sweep points survive the
  mutation, qualifying-subset enumerations are kept outright (they
  depend only on schema structure), and allocation profiles are patched
  per subset instead of rebuilt wholesale.  Structural mutations (new
  entity/relationship types), unknown baselines and non-delta-capable
  scorer pairs (random walk, entropy) fall back to the full cache drop,
  so the fast path is never trusted beyond what the scorers guarantee.

Algorithms resolve through :data:`~repro.core.registry.DISCOVERY_ALGORITHMS`;
a third-party algorithm registered there is immediately servable by the
engine with full memoization (though without the Apriori sweep fast path).
"""

from __future__ import annotations

import logging
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, List, Optional, Tuple

from .. import kernel, plan
from ..core.apriori import _registered_apriori as _builtin_apriori_runner
from ..core.branch_bound import branch_and_bound_discover as _builtin_branch_bound
from ..core.brute_force import brute_force_discover as _builtin_brute_force
from ..core.dynamic_prog import (
    _registered_dynamic_programming as _builtin_dynamic_programming,
)
from ..core.candidates import (
    AllocationProfile,
    build_allocation_profile,
    eligible_key_types,
)
from ..core.constraints import (
    DistanceConstraint,
    SizeConstraint,
    validate_constraints,
)
from ..core.discovery import make_context
from ..core.preview import DiscoveryResult
from ..core.registry import AlgorithmSpec, resolve_algorithm
from ..exceptions import InfeasiblePreviewError
from ..graph.cliques import k_cliques
from ..model.ids import TypeId
from ..scoring.base import scorer_pair_supports_delta
from ..scoring.preview_score import ScoringContext
from .query import PreviewQuery

if TYPE_CHECKING:  # pragma: no cover - typing only, keeps jobs=1 lean
    from ..parallel import ShardedExecutor

logger = logging.getLogger(__name__)

_NEG_INF = float("-inf")

#: Built-in runners that provably read only *eligible* types' scores
#: (their enumerations all start from ``eligible_key_types``); their
#: results therefore depend on the eligible set, not every type.
_ELIGIBLE_ONLY_RUNNERS = (
    _builtin_apriori_runner,
    _builtin_branch_bound,
    _builtin_brute_force,
    _builtin_dynamic_programming,
)




class PreviewEngine:
    """Cache-aware preview query engine over one dataset.

    Parameters
    ----------
    data:
        An :class:`EntityGraph`, :class:`SchemaGraph`,
        :class:`ScoringContext`, or a *generation-tracked source* — any
        object exposing a ``generation`` attribute and a
        ``context(key_scorer, nonkey_scorer)`` method, such as
        :class:`~repro.ext.incremental.IncrementalEntityGraph`.  With a
        tracked source, every mutation of the underlying graph
        invalidates the engine's caches automatically.
    key_scorer, nonkey_scorer:
        Scoring measure names; ignored when ``data`` is a prebuilt
        context.

    Examples
    --------
    Build a tiny graph, keep one engine, and watch the second identical
    query come out of the memo:

    >>> from repro import EntityGraphBuilder, PreviewEngine
    >>> b = EntityGraphBuilder("tiny")
    >>> _ = b.entity("Men in Black", "FILM").entity("Will Smith", "FILM ACTOR")
    >>> _ = b.relate("Will Smith", "Actor", "Men in Black")
    >>> engine = PreviewEngine(b.build())
    >>> engine.query(k=1, n=1).preview.table_count
    1
    >>> _ = engine.query(k=1, n=1)
    >>> info = engine.cache_info()
    >>> (info["misses"], info["hits"])
    (1, 1)
    """

    def __init__(
        self,
        data: object,
        key_scorer: str = "coverage",
        nonkey_scorer: str = "coverage",
    ) -> None:
        self._key_scorer = key_scorer
        self._nonkey_scorer = nonkey_scorer
        if hasattr(data, "generation") and callable(getattr(data, "context", None)):
            self._source = data
            self._static_context: Optional[ScoringContext] = None
        else:
            self._source = None
            self._static_context = make_context(
                data, key_scorer=key_scorer, nonkey_scorer=nonkey_scorer
            )
        #: (spec, cache_key) -> DiscoveryResult (None = memoized
        #: infeasibility).  Keying by the resolved AlgorithmSpec means a
        #: re-registered algorithm never serves a stale predecessor's
        #: results from a live engine.
        self._results: Dict[Tuple, Optional[DiscoveryResult]] = {}
        #: Memo key -> the key types its result depends on; a mutation
        #: dirtying a disjoint set provably cannot change the result, so
        #: the entry survives type-scoped invalidation.
        self._result_deps: Dict[Tuple, FrozenSet[TypeId]] = {}
        #: (k, d, mode) -> qualifying key subsets, in the Apriori clique
        #: enumeration order (so score ties resolve identically).
        self._subsets: Dict[Tuple, List[Tuple[TypeId, ...]]] = {}
        #: (k, d, mode) -> union of the group's subset types (the
        #: dependency set of every result answered from that group).
        self._group_deps: Dict[Tuple, FrozenSet[TypeId]] = {}
        #: (k, d, mode) -> per-subset allocation profiles, positionally
        #: aligned with the subsets.
        self._profiles: Dict[Tuple, List[Optional[AllocationProfile]]] = {}
        #: (k, d, mode) -> subset positions whose profiles must be
        #: rebuilt against the patched pool before the next read (lazily
        #: applied by :meth:`_apriori_profiles`).
        self._stale_profiles: Dict[Tuple, set] = {}
        #: Cached worker-pool snapshot + the types dirtied since it was
        #: projected (refreshed in O(delta) on the next parallel build).
        self._snapshot = None
        self._snapshot_dirty: set = set()
        #: Whether this engine's scorer pair allows type-scoped eviction
        #: (both scorers must declare ``supports_delta``); resolved once
        #: from the scorer registries, False for unknown names.
        self._delta_capable = scorer_pair_supports_delta(key_scorer, nonkey_scorer)
        #: Dependency sets are only worth recording when a type-scoped
        #: eviction can ever consult them: a changelog-bearing source
        #: plus a delta-capable scorer pair.
        self._track_deps = bool(
            self._delta_capable
            and self._source is not None
            and callable(getattr(self._source, "dirty_since", None))
        )
        #: Interned "eligible set" dependency value (one per pool
        #: lifetime — eligibility only changes structurally, and a
        #: structural change fully invalidates).
        self._eligible_deps: Optional[FrozenSet[TypeId]] = None
        self._cache_generation = self.generation
        self._hits = 0
        self._misses = 0
        self._invalidations = 0
        self._retained = 0
        self._evicted = 0
        #: Batched-kernel dispatches made on behalf of this engine's
        #: queries (captured as deltas of the process-wide kernel
        #: counters around each execution, so nested discovery calls and
        #: parent-side sharded dispatches are all attributed here).
        self._kernel_batches = 0
        self._kernel_subsets = 0
        #: Planner decisions made on behalf of this engine's queries
        #: and sweep prewarms (deltas of the process-wide counters, the
        #: same attribution scheme as the kernel counters above).
        self._plan_decisions: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """The source's mutation counter (0 for static data)."""
        if self._source is not None:
            return self._source.generation
        return 0

    @property
    def context(self) -> ScoringContext:
        """The current-generation scoring context."""
        if self._source is not None:
            return self._source.context(self._key_scorer, self._nonkey_scorer)
        return self._static_context

    def invalidate(self) -> None:
        """Drop every cached result and sweep artifact (full reset)."""
        self._evicted += len(self._results)
        self._results.clear()
        self._result_deps.clear()
        self._subsets.clear()
        self._group_deps.clear()
        self._profiles.clear()
        self._stale_profiles.clear()
        self._snapshot = None
        self._snapshot_dirty.clear()
        self._eligible_deps = None
        self._invalidations += 1

    def cache_info(self) -> Dict[str, object]:
        """Hit/miss/size counters (for tests, benches and ops).

        Synchronizes with the tracked source first, so a mutation is
        reflected here (fresh generation, dropped caches) even before
        the next query observes it.  ``retained``/``evicted`` count memo
        entries that survived vs. were dropped across all invalidation
        events so far: a full invalidation evicts everything, while a
        type-scoped one (mutation-changelog sources, delta-capable
        scorers) evicts only entries whose dependency set intersects the
        dirty types.  ``invalidations`` counts the *full* cache drops
        only.  ``kernel_backend`` names the active scoring-kernel
        backend and ``kernel_batches``/``kernel_subsets`` count the
        batched kernel dispatches (and subsets they scored) made on
        behalf of this engine.  ``plan_mode`` names the effective
        execution-planner mode and ``plan_decisions`` breaks down the
        planner decisions (serial/sharded/batched-sweep; model-warm vs
        fallback) attributed to this engine's queries and sweep
        prewarms (see :mod:`repro.plan`).
        """
        self._sync_generation()
        return {
            "hits": self._hits,
            "misses": self._misses,
            "results": len(self._results),
            "profile_groups": len(self._profiles),
            "generation": self._cache_generation,
            "invalidations": self._invalidations,
            "retained": self._retained,
            "evicted": self._evicted,
            "kernel_backend": kernel.backend_name(),
            "kernel_batches": self._kernel_batches,
            "kernel_subsets": self._kernel_subsets,
            "plan_mode": plan.plan_mode(),
            "plan_decisions": dict(self._plan_decisions),
        }

    def _sync_generation(self) -> None:
        generation = self.generation
        if generation == self._cache_generation:
            return
        delta = self._dirty_delta(self._cache_generation)
        if delta is None:
            self.invalidate()
        elif not delta.empty:
            self._evict_dirty(frozenset(delta.key_types))
        # An empty delta (pure no-op mutations) retains every cache.
        self._cache_generation = generation

    def _dirty_delta(self, since: int):
        """The non-structural dirty delta since ``since``, else None.

        None — meaning "fall back to a full invalidation" — whenever the
        source does not expose the mutation changelog, the scorer pair
        is not delta-capable, the baseline predates the changelog's
        retention window, or the delta contains a structural mutation.
        """
        if self._source is None or not self._delta_capable:
            return None
        dirty_since = getattr(self._source, "dirty_since", None)
        if dirty_since is None:
            return None
        delta = dirty_since(since)
        if delta.structural or delta.full:
            return None
        return delta

    def _evict_dirty(self, dirty: FrozenSet[TypeId]) -> None:
        """Type-scoped invalidation for one non-structural dirty set.

        Memo entries whose dependency set intersects ``dirty`` are
        dropped; the rest — results over provably untouched scores —
        survive.  Qualifying-subset enumerations depend only on schema
        structure and are kept outright; allocation profiles containing
        a dirty type are marked for lazy per-subset rebuild; the worker
        snapshot accumulates the dirty set for its next O(delta)
        refresh.
        """
        stale_keys = [
            key for key, deps in self._result_deps.items() if deps & dirty
        ]
        for key in stale_keys:
            del self._results[key]
            del self._result_deps[key]
        self._evicted += len(stale_keys)
        self._retained += len(self._results)
        for group_key in self._profiles:
            subsets = self._subsets.get(group_key)
            if subsets is None:
                continue
            stale = {
                position
                for position, keys in enumerate(subsets)
                if not dirty.isdisjoint(keys)
            }
            if stale:
                self._stale_profiles.setdefault(group_key, set()).update(stale)
        if self._snapshot is not None:
            self._snapshot_dirty.update(dirty)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(
        self,
        k: int,
        n: int,
        d: Optional[int] = None,
        mode: str = "tight",
        algorithm: str = "auto",
        jobs: int = 1,
    ) -> DiscoveryResult:
        """Answer one preview query (same contract as ``discover_preview``).

        Keyword convenience over :meth:`run`: builds the
        :class:`PreviewQuery` from ``k``/``n``/``d``/``mode``/
        ``algorithm`` and returns its :class:`DiscoveryResult`; raises
        :class:`~repro.exceptions.InfeasiblePreviewError` when no
        preview satisfies the constraints.
        """
        return self.run(
            PreviewQuery(k=k, n=n, d=d, mode=mode, algorithm=algorithm), jobs=jobs
        )

    def run(
        self,
        query: PreviewQuery,
        jobs: int = 1,
        executor: Optional["ShardedExecutor"] = None,
    ) -> DiscoveryResult:
        """Answer a :class:`PreviewQuery`; raises when infeasible.

        Parameters
        ----------
        query:
            The preview request (same contract as ``discover_preview``).
        jobs:
            Worker processes for the qualifying-subset evaluation of the
            built-in Apriori and brute-force algorithms (0 = all CPU
            cores), bit-identical to a serial run; other algorithms run
            serially regardless.  Memoization ignores ``jobs``, since it
            never changes the answer.
        executor:
            An already-running :class:`~repro.parallel.ShardedExecutor`
            to shard on instead of spinning up (and tearing down) a
            per-call pool — the serving layer keeps one executor alive
            per dataset across requests.  Overrides ``jobs``.

        Returns
        -------
        DiscoveryResult
            The optimal preview with its score and provenance.

        Raises
        ------
        InfeasiblePreviewError
            When no preview satisfies the constraints.
        DiscoveryError
            When the query's constraints are malformed.
        """
        result = self._run_cached(query, jobs=jobs, executor=executor)
        if result is None:
            raise InfeasiblePreviewError(
                f"no preview satisfies the constraints ({query.describe()})"
            )
        return result

    def sweep(
        self,
        queries: Iterable[PreviewQuery],
        skip_infeasible: bool = False,
        jobs: int = 1,
        executor: Optional["ShardedExecutor"] = None,
    ) -> List[Optional[DiscoveryResult]]:
        """Answer a batch of queries, sharing state across points.

        Parameters
        ----------
        queries:
            The batch, answered in input order (deterministic
            tie-breaks); an empty batch returns an empty list explicitly
            rather than silently reporting a vacuous sweep.
        skip_infeasible:
            When true, infeasible points yield None in the result list
            instead of raising.
        jobs:
            With ``jobs > 1`` the heavy lifting is sharded across one
            worker pool shared by the whole batch: every sweep group's
            per-subset allocation profiles are built in parallel shards
            up front, and the independent sweep points are then answered
            from those shared artifacts (plus sharded brute-force
            evaluation for points that dispatch there).
        executor:
            An already-running :class:`~repro.parallel.ShardedExecutor`
            to use for the whole batch instead of creating one;
            overrides ``jobs``.  Lets a long-lived serving process
            amortize worker startup across *batches*, not just points.

        Returns
        -------
        list of DiscoveryResult or None
            Positionally aligned with ``queries`` and identical to
            running each query alone (which in turn matches per-call
            ``discover_preview``).

        Raises
        ------
        InfeasiblePreviewError
            On the first infeasible point, unless ``skip_infeasible``.
        """
        queries = list(queries)
        if not queries:
            logger.warning(
                "PreviewEngine.sweep received zero queries; returning [] "
                "(was a grid axis empty or a generator already exhausted?)"
            )
            return []
        if executor is not None:
            return self._sweep_batch(queries, skip_infeasible, executor)
        if jobs != 1:
            from ..parallel import ShardedExecutor

            # One pool amortized over the whole batch: profile prewarm
            # and every sharded point reuse the same workers.
            with ShardedExecutor(jobs) as executor:
                return self._sweep_batch(queries, skip_infeasible, executor)
        return self._sweep_batch(queries, skip_infeasible, None)

    def _sweep_batch(
        self,
        queries: List[PreviewQuery],
        skip_infeasible: bool,
        executor: Optional["ShardedExecutor"],
    ) -> List[Optional[DiscoveryResult]]:
        self._prewarm_profiles(queries, executor=executor)
        results: List[Optional[DiscoveryResult]] = []
        for query in queries:
            result = self._run_cached(query, executor=executor)
            if result is None and not skip_infeasible:
                raise InfeasiblePreviewError(
                    f"no preview satisfies the constraints ({query.describe()})"
                )
            results.append(result)
        return results

    def _prewarm_profiles(
        self,
        queries: List[PreviewQuery],
        executor: Optional["ShardedExecutor"] = None,
    ) -> None:
        """Build each sweep group's profiles at its widest budget upfront.

        Without this, an ascending-``n`` sweep would build capped
        profiles for its first point and rebuild them on the second;
        knowing the whole batch, one sized-right build serves every
        point.  Queries that are malformed or won't take the Apriori
        fast path are skipped — they fail or dispatch normally later.

        With a parallel executor, the *whole batch* of pending builds
        is planned at once (:func:`repro.plan.plan_sweep`): groups big
        enough for their own sharded dispatch get one, and — under the
        ``auto`` planner — groups individually too small are batched
        into one combined worker dispatch instead of each running
        serially, amortizing the snapshot shipping across sweep points.
        """
        from ..exceptions import DiscoveryError

        self._sync_generation()
        widest: Dict[Tuple, Tuple[SizeConstraint, DistanceConstraint]] = {}
        for query in queries:
            try:
                distance = query.distance()
                if distance is None:
                    continue
                spec = resolve_algorithm(query.algorithm, query.shape())
                size = query.size()
            except DiscoveryError:
                continue
            if spec.runner is not _builtin_apriori_runner:
                continue
            group_key = (size.k, distance.d, distance.mode.value)
            known = widest.get(group_key)
            if known is None or size.n > known[0].n:
                widest[group_key] = (size, distance)
        if executor is None or executor.jobs <= 1:
            for size, distance in widest.values():
                self._apriori_profiles(
                    self.context, size, distance, executor=executor
                )
            return
        plan_before = plan.decision_counts()
        context = self.context
        # Collect the groups that actually need a (re)build, with the
        # same cap semantics as _apriori_profiles: capped on the first
        # build, exhaustive on a rebuild for a wider budget.
        pending: List[Tuple[Tuple, List[Tuple[TypeId, ...]], Optional[int]]] = []
        for size, distance in widest.values():
            group_key, subsets = self._group_subsets(context, size, distance)
            extra_cap = size.n - size.k
            profiles = self._patch_stale_profiles(context, group_key, subsets)
            if profiles is not None and all(
                profile is None or profile.covers(extra_cap)
                for profile in profiles
            ):
                continue
            if not subsets:
                self._profiles[group_key] = []
                continue
            cap = extra_cap if profiles is None else None
            pending.append((group_key, subsets, cap))
        if not pending:
            self._accumulate_plan_decisions(plan_before)
            return
        sweep_plan = plan.plan_sweep(
            [len(subsets) for _, subsets, _ in pending], executor.jobs
        )
        pool = context.candidate_pool()
        for at in sweep_plan.sharded:
            group_key, subsets, cap = pending[at]
            snapshot = self._current_snapshot(pool)
            self._profiles[group_key] = self._rehydrate_profiles(
                pool, subsets, executor.build_profiles(snapshot, subsets, cap)
            )
        if sweep_plan.batched:
            snapshot = self._current_snapshot(pool)
            grouped = executor.build_profile_groups(
                snapshot,
                [
                    (pending[at][1], pending[at][2])
                    for at in sweep_plan.batched
                ],
            )
            for at, payloads in zip(sweep_plan.batched, grouped):
                group_key, subsets, _cap = pending[at]
                self._profiles[group_key] = self._rehydrate_profiles(
                    pool, subsets, payloads
                )
        for at in sweep_plan.serial:
            group_key, subsets, cap = pending[at]
            self._profiles[group_key] = [
                build_allocation_profile(pool, keys, cap=cap)
                for keys in subsets
            ]
        self._accumulate_plan_decisions(plan_before)

    def _rehydrate_profiles(
        self,
        pool,
        subsets: List[Tuple[TypeId, ...]],
        payloads,
    ) -> List[Optional[AllocationProfile]]:
        """Worker profile payloads -> AllocationProfiles over ``pool``."""
        return [
            None
            if payload is None
            else AllocationProfile(
                keys,
                tuple(pool.index[key] for key in keys),
                payload[0],
                payload[1],
                payload[2],
            )
            for keys, payload in zip(subsets, payloads)
        ]

    def _accumulate_plan_decisions(self, before: Dict[str, int]) -> None:
        """Fold the planner-counter delta since ``before`` into this engine."""
        for key, value in plan.decision_counts().items():
            delta = value - before.get(key, 0)
            if delta:
                self._plan_decisions[key] = (
                    self._plan_decisions.get(key, 0) + delta
                )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _run_cached(
        self,
        query: PreviewQuery,
        jobs: int = 1,
        executor: Optional["ShardedExecutor"] = None,
    ) -> Optional[DiscoveryResult]:
        self._sync_generation()
        # Validate the constraints before touching any counter or memo
        # state: a malformed query (k=0, negative d, bogus mode) raises
        # here and leaves hit/miss statistics exactly as they were.
        query.size()
        query.distance()
        spec: AlgorithmSpec = resolve_algorithm(query.algorithm, query.shape())
        cache_key = (spec, query.cache_key())
        if cache_key in self._results:
            self._hits += 1
            return self._results[cache_key]
        # Count the miss only once the execution produced an answer
        # (feasible or memoized-infeasible); an algorithm that raises
        # mid-flight must not skew the statistics of retried queries.
        before = kernel.kernel_stats()
        plan_before = plan.decision_counts()
        result = self._execute(spec, query, jobs=jobs, executor=executor)
        after = kernel.kernel_stats()
        self._accumulate_plan_decisions(plan_before)
        self._kernel_batches += after["batches"] - before["batches"]
        self._kernel_subsets += after["subsets"] - before["subsets"]
        self._misses += 1
        self._results[cache_key] = result
        if self._track_deps:
            self._result_deps[cache_key] = self._dependencies(spec, query)
        return result

    def _dependencies(self, spec: AlgorithmSpec, query: PreviewQuery) -> FrozenSet[TypeId]:
        """The key types whose scores this query's result depends on.

        Called after :meth:`_execute`, so fast-path groups are already
        enumerated.  Three tiers, each sound under *non-structural*
        mutations (type universe, ``Γτ`` membership, distances and
        eligibility all fixed):

        * Apriori fast path — the union of the group's qualifying
          subsets: the result is the argmax over those subsets'
          allocation profiles, and each profile reads only its own
          types' scores;
        * other built-ins — the eligible set: their enumerations draw
          keys from ``eligible_key_types`` and read nothing else;
        * third-party algorithms — every type (they may read anything).
        """
        distance = query.distance()
        if distance is not None and spec.runner is _builtin_apriori_runner:
            group_key = (query.size().k, distance.d, distance.mode.value)
            deps = self._group_deps.get(group_key)
            if deps is not None:
                return deps
        pool = self.context.candidate_pool()
        if spec.runner in _ELIGIBLE_ONLY_RUNNERS:
            if self._eligible_deps is None:
                self._eligible_deps = frozenset(pool.eligible)
            return self._eligible_deps
        return frozenset(pool.types)

    def _execute(
        self,
        spec: AlgorithmSpec,
        query: PreviewQuery,
        jobs: int = 1,
        executor: Optional["ShardedExecutor"] = None,
    ) -> Optional[DiscoveryResult]:
        context = self.context
        size = query.size()
        distance = query.distance()
        # The sweep fast path stands in for the *built-in* Apriori only;
        # a shadowing re-registration under the same name must win.
        if distance is not None and spec.runner is _builtin_apriori_runner:
            if executor is not None:
                return self._execute_apriori(
                    context, size, distance, executor=executor
                )
            if jobs != 1:
                from ..parallel import ShardedExecutor

                # Lazily started: a pool only spins up if the profiles
                # are not already cached for this group.
                with ShardedExecutor(jobs) as owned:
                    return self._execute_apriori(
                        context, size, distance, executor=owned
                    )
            return self._execute_apriori(context, size, distance)
        if (jobs != 1 or executor is not None) and (
            spec.runner is _builtin_brute_force
        ):
            return _builtin_brute_force(
                context, size, distance, jobs=jobs, executor=executor
            )
        return spec.run(context, size, distance)

    # -- Apriori sweep fast path ---------------------------------------
    def _apriori_profiles(
        self,
        context: ScoringContext,
        size: SizeConstraint,
        distance: DistanceConstraint,
        executor: Optional["ShardedExecutor"] = None,
    ) -> List[Optional[AllocationProfile]]:
        """Clique subsets + allocation profiles for one ``(k, d, mode)``.

        The subsets are enumerated once per generation (order matching
        ``apriori_discover`` so score ties resolve identically).  The
        profiles are first built capped at this query's ``n - k`` — a
        one-shot query then costs no more than the legacy allocation —
        and rebuilt uncapped the first time a larger budget arrives,
        after which every ``n`` along a sweep reuses them.

        With a parallel ``executor``, the per-subset merges run in
        worker shards against a picklable pool snapshot and the profile
        payloads are re-hydrated here; the same allocation code runs on
        the same flat score arrays, so the profiles are bit-identical to
        a serial build (see :mod:`repro.parallel`).
        """
        group_key, subsets = self._group_subsets(context, size, distance)

        extra_cap = size.n - size.k
        profiles = self._patch_stale_profiles(context, group_key, subsets)
        if profiles is not None and all(
            profile is None or profile.covers(extra_cap) for profile in profiles
        ):
            return profiles
        pool = context.candidate_pool()
        cap = extra_cap if profiles is None else None  # 2nd build: exhaustive
        if executor is not None and kernel.should_shard(
            len(subsets), executor.jobs
        ):
            snapshot = self._current_snapshot(pool)
            profiles = self._rehydrate_profiles(
                pool, subsets, executor.build_profiles(snapshot, subsets, cap)
            )
        else:
            profiles = [
                build_allocation_profile(pool, keys, cap=cap) for keys in subsets
            ]
        self._profiles[group_key] = profiles
        return profiles

    def _group_subsets(
        self,
        context: ScoringContext,
        size: SizeConstraint,
        distance: DistanceConstraint,
    ) -> Tuple[Tuple, List[Tuple[TypeId, ...]]]:
        """The ``(k, d, mode)`` group key and its qualifying subsets.

        Enumerated once per generation, in the ``apriori_discover``
        clique order so score ties resolve identically everywhere the
        group is read (profile scans and batched kernel calls alike).
        """
        group_key = (size.k, distance.d, distance.mode.value)
        subsets = self._subsets.get(group_key)
        if subsets is None:
            key_pool = eligible_key_types(context)
            oracle = context.schema.distance_oracle()

            def adjacent(a: TypeId, b: TypeId) -> bool:
                return distance.pair_ok(oracle, a, b)

            subsets = list(
                k_cliques(key_pool, adjacent, size.k, backend="apriori")
            )
            self._subsets[group_key] = subsets
            self._group_deps[group_key] = frozenset(
                type_name for keys in subsets for type_name in keys
            )
        return group_key, subsets

    def _patch_stale_profiles(
        self,
        context: ScoringContext,
        group_key: Tuple,
        subsets: List[Tuple[TypeId, ...]],
    ) -> Optional[List[Optional[AllocationProfile]]]:
        """Apply pending per-subset patches and return the group's profiles.

        After a type-scoped invalidation, only the profiles whose key
        subset contains a dirty type were marked stale: rebuild exactly
        those against the patched pool (uncapped, so they cover every
        budget) and keep the rest — their types' weighted rows are
        bit-identical, so their pick sequences still are too.  A profile
        that was None stays None: infeasibility (a key with an empty
        ``Γτ``) is a structural property, and structural mutations never
        reach this path.
        """
        profiles = self._profiles.get(group_key)
        stale = self._stale_profiles.pop(group_key, None)
        if profiles is None or not stale:
            return profiles
        pool = context.candidate_pool()
        for position in stale:
            if profiles[position] is not None:
                profiles[position] = build_allocation_profile(
                    pool, subsets[position], cap=None
                )
        return profiles

    def _current_snapshot(self, pool):
        """The worker-pool snapshot for ``pool``, refreshed in O(delta).

        Built once — as a zero-copy mmap-backed snapshot or a picklable
        tuple snapshot per the ``REPRO_SNAPSHOT`` knob
        (:func:`~repro.parallel.make_snapshot`) — then patched with the
        types dirtied since the last parallel build (see
        :meth:`~repro.parallel.ScoringSnapshot.refresh`): untouched rows
        keep their already-projected scores, so a long-lived executor
        stays warm across mutations.  Full invalidations reset it.
        """
        from ..parallel import make_snapshot

        if self._snapshot is None:
            self._snapshot = make_snapshot(pool)
        elif self._snapshot_dirty:
            self._snapshot = self._snapshot.refresh(pool, self._snapshot_dirty)
        self._snapshot_dirty.clear()
        return self._snapshot

    def _execute_apriori(
        self,
        context: ScoringContext,
        size: SizeConstraint,
        distance: DistanceConstraint,
        executor: Optional["ShardedExecutor"] = None,
    ) -> Optional[DiscoveryResult]:
        """Answer one tight/diverse point from the group's shared state.

        Produces the same :class:`DiscoveryResult` (preview, score and
        bookkeeping) as :func:`repro.core.apriori.apriori_discover`.

        Two regimes, chosen by whether the group's allocation profiles
        exist (a sweep prewarmed them):

        * **profiles cached** — scan their cumulative-score prefixes,
          the sweep fast path;
        * **one-shot point** — score the whole group in one batched
          kernel call (sharded over the executor above the dispatch
          threshold) and build only the winner's profile.  Building
          per-subset profiles for a single budget would cost more than
          the answer; a later sweep still gets them via its prewarm.
        """
        validate_constraints(size, distance, eligible_key_types(context))
        group_key, subsets = self._group_subsets(context, size, distance)
        if not subsets:
            return None
        extra_cap = size.n - size.k
        if group_key in self._profiles:
            profiles = self._apriori_profiles(
                context, size, distance, executor=executor
            )
            best_score = _NEG_INF
            best: Optional[AllocationProfile] = None
            for profile in profiles:
                if profile is None:
                    continue
                score = profile.score_at(extra_cap)
                if score > best_score:
                    best_score = score
                    best = profile
            if best is None:
                return None
            pool = context.candidate_pool()
            return DiscoveryResult(
                preview=best.preview_at(pool, extra_cap),
                score=best_score,
                algorithm="apriori[apriori]",
                key_scorer=context.key_scorer_name,
                nonkey_scorer=context.nonkey_scorer_name,
                candidates_examined=len(profiles),
            )
        pool = context.candidate_pool()
        if executor is not None and kernel.should_shard(
            len(subsets), executor.jobs
        ):
            snapshot = self._current_snapshot(pool)
            best_at = executor.best_allocation(snapshot, subsets, extra_cap)
        else:
            best_at = kernel.best_allocation(pool, subsets, extra_cap)
        if best_at is None:
            return None
        winner = build_allocation_profile(
            pool, subsets[best_at[1]], cap=extra_cap
        )
        if winner is None:  # pragma: no cover - kernel said feasible
            return None
        return DiscoveryResult(
            preview=winner.preview_at(pool, extra_cap),
            score=winner.score_at(extra_cap),
            algorithm="apriori[apriori]",
            key_scorer=context.key_scorer_name,
            nonkey_scorer=context.nonkey_scorer_name,
            candidates_examined=len(subsets),
        )
