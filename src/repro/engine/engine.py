"""The preview engine: registry-dispatched, cache-aware query execution.

:class:`PreviewEngine` hoists everything the per-call
:func:`~repro.core.discovery.discover_preview` facade cannot share out of
the request path, the way multi-query database engines hoist common
sub-plans out of per-query execution:

* **Scoring state** — one :class:`~repro.scoring.ScoringContext` (and its
  :class:`~repro.scoring.CandidatePool` of sorted Γτ arrays and prefix
  sums) serves every query;
* **Result memoization** — :class:`DiscoveryResult`\\ s are cached per
  ``(generation, query)``, so repeated queries — the common case under
  preview-serving traffic — are O(1);
* **Sweep state reuse** — for distance-constrained (tight/diverse)
  queries answered by the Apriori algorithm, the compatibility k-cliques
  and the per-subset k-way-merge *allocation profiles* depend only on
  ``(k, d, mode)``, not on ``n``.  The engine computes them once and
  answers every ``n`` along a Fig. 9-style sweep by reading a prefix of
  each profile's cumulative-score array — byte-identical results to a
  fresh :func:`apriori_discover` call at a fraction of the cost;
* **Invalidation** — when constructed over a generation-tracked source
  (:class:`~repro.ext.incremental.IncrementalEntityGraph`), every cache
  is dropped the moment the source's ``generation`` counter moves,
  making the paper's "previews cannot be incrementally updated" explicit
  while keeping the *scores* incrementally maintained.

Algorithms resolve through :data:`~repro.core.registry.DISCOVERY_ALGORITHMS`;
a third-party algorithm registered there is immediately servable by the
engine with full memoization (though without the Apriori sweep fast path).
"""

from __future__ import annotations

import logging
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from ..core.apriori import _registered_apriori as _builtin_apriori_runner
from ..core.brute_force import brute_force_discover as _builtin_brute_force
from ..core.candidates import (
    AllocationProfile,
    build_allocation_profile,
    eligible_key_types,
)
from ..core.constraints import (
    DistanceConstraint,
    SizeConstraint,
    validate_constraints,
)
from ..core.discovery import make_context
from ..core.preview import DiscoveryResult
from ..core.registry import AlgorithmSpec, resolve_algorithm
from ..exceptions import InfeasiblePreviewError
from ..graph.cliques import k_cliques
from ..model.ids import TypeId
from ..scoring.preview_score import ScoringContext
from .query import PreviewQuery

if TYPE_CHECKING:  # pragma: no cover - typing only, keeps jobs=1 lean
    from ..parallel import ShardedExecutor

logger = logging.getLogger(__name__)

_NEG_INF = float("-inf")


class PreviewEngine:
    """Cache-aware preview query engine over one dataset.

    Parameters
    ----------
    data:
        An :class:`EntityGraph`, :class:`SchemaGraph`,
        :class:`ScoringContext`, or a *generation-tracked source* — any
        object exposing a ``generation`` attribute and a
        ``context(key_scorer, nonkey_scorer)`` method, such as
        :class:`~repro.ext.incremental.IncrementalEntityGraph`.  With a
        tracked source, every mutation of the underlying graph
        invalidates the engine's caches automatically.
    key_scorer, nonkey_scorer:
        Scoring measure names; ignored when ``data`` is a prebuilt
        context.
    """

    def __init__(
        self,
        data: object,
        key_scorer: str = "coverage",
        nonkey_scorer: str = "coverage",
    ) -> None:
        self._key_scorer = key_scorer
        self._nonkey_scorer = nonkey_scorer
        if hasattr(data, "generation") and callable(getattr(data, "context", None)):
            self._source = data
            self._static_context: Optional[ScoringContext] = None
        else:
            self._source = None
            self._static_context = make_context(
                data, key_scorer=key_scorer, nonkey_scorer=nonkey_scorer
            )
        #: (spec, cache_key) -> DiscoveryResult (None = memoized
        #: infeasibility).  Keying by the resolved AlgorithmSpec means a
        #: re-registered algorithm never serves a stale predecessor's
        #: results from a live engine.
        self._results: Dict[Tuple, Optional[DiscoveryResult]] = {}
        #: (k, d, mode) -> qualifying key subsets, in the Apriori clique
        #: enumeration order (so score ties resolve identically).
        self._subsets: Dict[Tuple, List[Tuple[TypeId, ...]]] = {}
        #: (k, d, mode) -> per-subset allocation profiles, positionally
        #: aligned with the subsets.
        self._profiles: Dict[Tuple, List[Optional[AllocationProfile]]] = {}
        self._cache_generation = self.generation
        self._hits = 0
        self._misses = 0
        self._invalidations = 0

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """The source's mutation counter (0 for static data)."""
        if self._source is not None:
            return self._source.generation
        return 0

    @property
    def context(self) -> ScoringContext:
        """The current-generation scoring context."""
        if self._source is not None:
            return self._source.context(self._key_scorer, self._nonkey_scorer)
        return self._static_context

    def invalidate(self) -> None:
        """Drop every cached result and sweep artifact."""
        self._results.clear()
        self._subsets.clear()
        self._profiles.clear()
        self._invalidations += 1

    def cache_info(self) -> Dict[str, int]:
        """Hit/miss/size counters (for tests, benches and ops).

        Synchronizes with the tracked source first, so a mutation is
        reflected here (fresh generation, dropped caches) even before
        the next query observes it.
        """
        self._sync_generation()
        return {
            "hits": self._hits,
            "misses": self._misses,
            "results": len(self._results),
            "profile_groups": len(self._profiles),
            "generation": self._cache_generation,
            "invalidations": self._invalidations,
        }

    def _sync_generation(self) -> None:
        generation = self.generation
        if generation != self._cache_generation:
            self.invalidate()
            self._cache_generation = generation

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(
        self,
        k: int,
        n: int,
        d: Optional[int] = None,
        mode: str = "tight",
        algorithm: str = "auto",
        jobs: int = 1,
    ) -> DiscoveryResult:
        """Answer one preview query (same contract as ``discover_preview``)."""
        return self.run(
            PreviewQuery(k=k, n=n, d=d, mode=mode, algorithm=algorithm), jobs=jobs
        )

    def run(self, query: PreviewQuery, jobs: int = 1) -> DiscoveryResult:
        """Answer a :class:`PreviewQuery`; raises when infeasible.

        ``jobs`` shards the qualifying-subset evaluation of the built-in
        Apriori and brute-force algorithms across worker processes
        (0 = all CPU cores) with bit-identical results; other algorithms
        run serially regardless.  Memoization ignores ``jobs``, since it
        never changes the answer.
        """
        result = self._run_cached(query, jobs=jobs)
        if result is None:
            raise InfeasiblePreviewError(
                f"no preview satisfies the constraints ({query.describe()})"
            )
        return result

    def sweep(
        self,
        queries: Iterable[PreviewQuery],
        skip_infeasible: bool = False,
        jobs: int = 1,
    ) -> List[Optional[DiscoveryResult]]:
        """Answer a batch of queries, sharing state across points.

        Results are positionally aligned with ``queries`` and identical
        to running each query alone (which in turn matches per-call
        ``discover_preview``).  With ``skip_infeasible`` the result list
        holds None at infeasible points instead of raising.

        With ``jobs > 1`` the heavy lifting is sharded across one worker
        pool shared by the whole batch: every sweep group's per-subset
        allocation profiles are built in parallel shards up front, and
        the independent sweep points are then answered — in input order,
        for deterministic tie-breaks — from those shared artifacts (plus
        sharded brute-force evaluation for points that dispatch there).
        An empty batch returns an empty list explicitly rather than
        silently reporting a vacuous sweep.
        """
        queries = list(queries)
        if not queries:
            logger.warning(
                "PreviewEngine.sweep received zero queries; returning [] "
                "(was a grid axis empty or a generator already exhausted?)"
            )
            return []
        if jobs != 1:
            from ..parallel import ShardedExecutor

            # One pool amortized over the whole batch: profile prewarm
            # and every sharded point reuse the same workers.
            with ShardedExecutor(jobs) as executor:
                return self._sweep_batch(queries, skip_infeasible, executor)
        return self._sweep_batch(queries, skip_infeasible, None)

    def _sweep_batch(
        self,
        queries: List[PreviewQuery],
        skip_infeasible: bool,
        executor: Optional["ShardedExecutor"],
    ) -> List[Optional[DiscoveryResult]]:
        self._prewarm_profiles(queries, executor=executor)
        results: List[Optional[DiscoveryResult]] = []
        for query in queries:
            result = self._run_cached(query, executor=executor)
            if result is None and not skip_infeasible:
                raise InfeasiblePreviewError(
                    f"no preview satisfies the constraints ({query.describe()})"
                )
            results.append(result)
        return results

    def _prewarm_profiles(
        self,
        queries: List[PreviewQuery],
        executor: Optional["ShardedExecutor"] = None,
    ) -> None:
        """Build each sweep group's profiles at its widest budget upfront.

        Without this, an ascending-``n`` sweep would build capped
        profiles for its first point and rebuild them on the second;
        knowing the whole batch, one sized-right build serves every
        point.  Queries that are malformed or won't take the Apriori
        fast path are skipped — they fail or dispatch normally later.
        """
        from ..exceptions import DiscoveryError

        self._sync_generation()
        widest: Dict[Tuple, Tuple[SizeConstraint, DistanceConstraint]] = {}
        for query in queries:
            try:
                distance = query.distance()
                if distance is None:
                    continue
                spec = resolve_algorithm(query.algorithm, query.shape())
                size = query.size()
            except DiscoveryError:
                continue
            if spec.runner is not _builtin_apriori_runner:
                continue
            group_key = (size.k, distance.d, distance.mode.value)
            known = widest.get(group_key)
            if known is None or size.n > known[0].n:
                widest[group_key] = (size, distance)
        for size, distance in widest.values():
            self._apriori_profiles(self.context, size, distance, executor=executor)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _run_cached(
        self,
        query: PreviewQuery,
        jobs: int = 1,
        executor: Optional["ShardedExecutor"] = None,
    ) -> Optional[DiscoveryResult]:
        self._sync_generation()
        # Validate the constraints before touching any counter or memo
        # state: a malformed query (k=0, negative d, bogus mode) raises
        # here and leaves hit/miss statistics exactly as they were.
        query.size()
        query.distance()
        spec: AlgorithmSpec = resolve_algorithm(query.algorithm, query.shape())
        cache_key = (spec, query.cache_key())
        if cache_key in self._results:
            self._hits += 1
            return self._results[cache_key]
        # Count the miss only once the execution produced an answer
        # (feasible or memoized-infeasible); an algorithm that raises
        # mid-flight must not skew the statistics of retried queries.
        result = self._execute(spec, query, jobs=jobs, executor=executor)
        self._misses += 1
        self._results[cache_key] = result
        return result

    def _execute(
        self,
        spec: AlgorithmSpec,
        query: PreviewQuery,
        jobs: int = 1,
        executor: Optional["ShardedExecutor"] = None,
    ) -> Optional[DiscoveryResult]:
        context = self.context
        size = query.size()
        distance = query.distance()
        # The sweep fast path stands in for the *built-in* Apriori only;
        # a shadowing re-registration under the same name must win.
        if distance is not None and spec.runner is _builtin_apriori_runner:
            if executor is not None:
                return self._execute_apriori(
                    context, size, distance, executor=executor
                )
            if jobs != 1:
                from ..parallel import ShardedExecutor

                # Lazily started: a pool only spins up if the profiles
                # are not already cached for this group.
                with ShardedExecutor(jobs) as owned:
                    return self._execute_apriori(
                        context, size, distance, executor=owned
                    )
            return self._execute_apriori(context, size, distance)
        if (jobs != 1 or executor is not None) and (
            spec.runner is _builtin_brute_force
        ):
            return _builtin_brute_force(
                context, size, distance, jobs=jobs, executor=executor
            )
        return spec.run(context, size, distance)

    # -- Apriori sweep fast path ---------------------------------------
    def _apriori_profiles(
        self,
        context: ScoringContext,
        size: SizeConstraint,
        distance: DistanceConstraint,
        executor: Optional["ShardedExecutor"] = None,
    ) -> List[Optional[AllocationProfile]]:
        """Clique subsets + allocation profiles for one ``(k, d, mode)``.

        The subsets are enumerated once per generation (order matching
        ``apriori_discover`` so score ties resolve identically).  The
        profiles are first built capped at this query's ``n - k`` — a
        one-shot query then costs no more than the legacy allocation —
        and rebuilt uncapped the first time a larger budget arrives,
        after which every ``n`` along a sweep reuses them.

        With a parallel ``executor``, the per-subset merges run in
        worker shards against a picklable pool snapshot and the profile
        payloads are re-hydrated here; the same allocation code runs on
        the same flat score arrays, so the profiles are bit-identical to
        a serial build (see :mod:`repro.parallel`).
        """
        group_key = (size.k, distance.d, distance.mode.value)
        subsets = self._subsets.get(group_key)
        if subsets is None:
            key_pool = eligible_key_types(context)
            oracle = context.schema.distance_oracle()

            def adjacent(a: TypeId, b: TypeId) -> bool:
                return distance.pair_ok(oracle, a, b)

            subsets = list(
                k_cliques(key_pool, adjacent, size.k, backend="apriori")
            )
            self._subsets[group_key] = subsets

        extra_cap = size.n - size.k
        profiles = self._profiles.get(group_key)
        if profiles is not None and all(
            profile is None or profile.covers(extra_cap) for profile in profiles
        ):
            return profiles
        pool = context.candidate_pool()
        cap = extra_cap if profiles is None else None  # 2nd build: exhaustive
        if executor is not None and executor.jobs > 1 and len(subsets) > 1:
            from ..parallel import ScoringSnapshot

            snapshot = ScoringSnapshot.from_pool(pool)
            profiles = [
                None
                if payload is None
                else AllocationProfile(
                    keys,
                    tuple(pool.index[key] for key in keys),
                    payload[0],
                    payload[1],
                    payload[2],
                )
                for keys, payload in zip(
                    subsets, executor.build_profiles(snapshot, subsets, cap)
                )
            ]
        else:
            profiles = [
                build_allocation_profile(pool, keys, cap=cap) for keys in subsets
            ]
        self._profiles[group_key] = profiles
        return profiles

    def _execute_apriori(
        self,
        context: ScoringContext,
        size: SizeConstraint,
        distance: DistanceConstraint,
        executor: Optional["ShardedExecutor"] = None,
    ) -> Optional[DiscoveryResult]:
        """Answer one tight/diverse point from the shared profiles.

        Produces the same :class:`DiscoveryResult` (preview, score and
        bookkeeping) as :func:`repro.core.apriori.apriori_discover`.
        """
        validate_constraints(size, distance, eligible_key_types(context))
        profiles = self._apriori_profiles(context, size, distance, executor=executor)
        if not profiles:
            return None
        extra_cap = size.n - size.k
        best_score = _NEG_INF
        best: Optional[AllocationProfile] = None
        for profile in profiles:
            if profile is None:
                continue
            score = profile.score_at(extra_cap)
            if score > best_score:
                best_score = score
                best = profile
        if best is None:
            return None
        pool = context.candidate_pool()
        return DiscoveryResult(
            preview=best.preview_at(pool, extra_cap),
            score=best_score,
            algorithm="apriori[apriori]",
            key_scorer=context.key_scorer_name,
            nonkey_scorer=context.nonkey_scorer_name,
            candidates_examined=len(profiles),
        )
