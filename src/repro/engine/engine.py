"""The preview engine: registry-dispatched, cache-aware query execution.

:class:`PreviewEngine` hoists everything the per-call
:func:`~repro.core.discovery.discover_preview` facade cannot share out of
the request path, the way multi-query database engines hoist common
sub-plans out of per-query execution:

* **Scoring state** — one :class:`~repro.scoring.ScoringContext` (and its
  :class:`~repro.scoring.CandidatePool` of sorted Γτ arrays and prefix
  sums) serves every query;
* **Result memoization** — :class:`DiscoveryResult`\\ s are cached per
  ``(generation, query)``, so repeated queries — the common case under
  preview-serving traffic — are O(1);
* **Sweep state reuse** — for distance-constrained (tight/diverse)
  queries answered by the Apriori algorithm, the compatibility k-cliques
  and the per-subset k-way-merge *allocation profiles* depend only on
  ``(k, d, mode)``, not on ``n``.  The engine computes them once and
  answers every ``n`` along a Fig. 9-style sweep by reading a prefix of
  each profile's cumulative-score array — byte-identical results to a
  fresh :func:`apriori_discover` call at a fraction of the cost;
* **Invalidation** — when constructed over a generation-tracked source
  (:class:`~repro.ext.incremental.IncrementalEntityGraph`), every cache
  is dropped the moment the source's ``generation`` counter moves,
  making the paper's "previews cannot be incrementally updated" explicit
  while keeping the *scores* incrementally maintained.

Algorithms resolve through :data:`~repro.core.registry.DISCOVERY_ALGORITHMS`;
a third-party algorithm registered there is immediately servable by the
engine with full memoization (though without the Apriori sweep fast path).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..core.apriori import _registered_apriori as _builtin_apriori_runner
from ..core.candidates import (
    AllocationProfile,
    build_allocation_profile,
    eligible_key_types,
)
from ..core.constraints import (
    DistanceConstraint,
    SizeConstraint,
    validate_constraints,
)
from ..core.discovery import make_context
from ..core.preview import DiscoveryResult
from ..core.registry import AlgorithmSpec, resolve_algorithm
from ..exceptions import InfeasiblePreviewError
from ..graph.cliques import k_cliques
from ..model.ids import TypeId
from ..scoring.preview_score import ScoringContext
from .query import PreviewQuery

_NEG_INF = float("-inf")


class PreviewEngine:
    """Cache-aware preview query engine over one dataset.

    Parameters
    ----------
    data:
        An :class:`EntityGraph`, :class:`SchemaGraph`,
        :class:`ScoringContext`, or a *generation-tracked source* — any
        object exposing a ``generation`` attribute and a
        ``context(key_scorer, nonkey_scorer)`` method, such as
        :class:`~repro.ext.incremental.IncrementalEntityGraph`.  With a
        tracked source, every mutation of the underlying graph
        invalidates the engine's caches automatically.
    key_scorer, nonkey_scorer:
        Scoring measure names; ignored when ``data`` is a prebuilt
        context.
    """

    def __init__(
        self,
        data: object,
        key_scorer: str = "coverage",
        nonkey_scorer: str = "coverage",
    ) -> None:
        self._key_scorer = key_scorer
        self._nonkey_scorer = nonkey_scorer
        if hasattr(data, "generation") and callable(getattr(data, "context", None)):
            self._source = data
            self._static_context: Optional[ScoringContext] = None
        else:
            self._source = None
            self._static_context = make_context(
                data, key_scorer=key_scorer, nonkey_scorer=nonkey_scorer
            )
        #: (spec, cache_key) -> DiscoveryResult (None = memoized
        #: infeasibility).  Keying by the resolved AlgorithmSpec means a
        #: re-registered algorithm never serves a stale predecessor's
        #: results from a live engine.
        self._results: Dict[Tuple, Optional[DiscoveryResult]] = {}
        #: (k, d, mode) -> qualifying key subsets, in the Apriori clique
        #: enumeration order (so score ties resolve identically).
        self._subsets: Dict[Tuple, List[Tuple[TypeId, ...]]] = {}
        #: (k, d, mode) -> per-subset allocation profiles, positionally
        #: aligned with the subsets.
        self._profiles: Dict[Tuple, List[Optional[AllocationProfile]]] = {}
        self._cache_generation = self.generation
        self._hits = 0
        self._misses = 0
        self._invalidations = 0

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """The source's mutation counter (0 for static data)."""
        if self._source is not None:
            return self._source.generation
        return 0

    @property
    def context(self) -> ScoringContext:
        """The current-generation scoring context."""
        if self._source is not None:
            return self._source.context(self._key_scorer, self._nonkey_scorer)
        return self._static_context

    def invalidate(self) -> None:
        """Drop every cached result and sweep artifact."""
        self._results.clear()
        self._subsets.clear()
        self._profiles.clear()
        self._invalidations += 1

    def cache_info(self) -> Dict[str, int]:
        """Hit/miss/size counters (for tests, benches and ops)."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "results": len(self._results),
            "profile_groups": len(self._profiles),
            "generation": self._cache_generation,
            "invalidations": self._invalidations,
        }

    def _sync_generation(self) -> None:
        generation = self.generation
        if generation != self._cache_generation:
            self.invalidate()
            self._cache_generation = generation

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(
        self,
        k: int,
        n: int,
        d: Optional[int] = None,
        mode: str = "tight",
        algorithm: str = "auto",
    ) -> DiscoveryResult:
        """Answer one preview query (same contract as ``discover_preview``)."""
        return self.run(PreviewQuery(k=k, n=n, d=d, mode=mode, algorithm=algorithm))

    def run(self, query: PreviewQuery) -> DiscoveryResult:
        """Answer a :class:`PreviewQuery`; raises when infeasible."""
        result = self._run_cached(query)
        if result is None:
            raise InfeasiblePreviewError(
                f"no preview satisfies the constraints ({query.describe()})"
            )
        return result

    def sweep(
        self,
        queries: Iterable[PreviewQuery],
        skip_infeasible: bool = False,
    ) -> List[Optional[DiscoveryResult]]:
        """Answer a batch of queries, sharing state across points.

        Results are positionally aligned with ``queries`` and identical
        to running each query alone (which in turn matches per-call
        ``discover_preview``).  With ``skip_infeasible`` the result list
        holds None at infeasible points instead of raising.
        """
        queries = list(queries)
        self._prewarm_profiles(queries)
        results: List[Optional[DiscoveryResult]] = []
        for query in queries:
            if skip_infeasible:
                results.append(self._run_cached(query))
            else:
                results.append(self.run(query))
        return results

    def _prewarm_profiles(self, queries: List[PreviewQuery]) -> None:
        """Build each sweep group's profiles at its widest budget upfront.

        Without this, an ascending-``n`` sweep would build capped
        profiles for its first point and rebuild them on the second;
        knowing the whole batch, one sized-right build serves every
        point.  Queries that are malformed or won't take the Apriori
        fast path are skipped — they fail or dispatch normally later.
        """
        from ..exceptions import DiscoveryError

        self._sync_generation()
        widest: Dict[Tuple, Tuple[SizeConstraint, DistanceConstraint]] = {}
        for query in queries:
            try:
                distance = query.distance()
                if distance is None:
                    continue
                spec = resolve_algorithm(query.algorithm, query.shape())
                size = query.size()
            except DiscoveryError:
                continue
            if spec.runner is not _builtin_apriori_runner:
                continue
            group_key = (size.k, distance.d, distance.mode.value)
            known = widest.get(group_key)
            if known is None or size.n > known[0].n:
                widest[group_key] = (size, distance)
        for size, distance in widest.values():
            self._apriori_profiles(self.context, size, distance)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _run_cached(self, query: PreviewQuery) -> Optional[DiscoveryResult]:
        self._sync_generation()
        spec: AlgorithmSpec = resolve_algorithm(query.algorithm, query.shape())
        cache_key = (spec, query.cache_key())
        if cache_key in self._results:
            self._hits += 1
            return self._results[cache_key]
        self._misses += 1
        result = self._execute(spec, query)
        self._results[cache_key] = result
        return result

    def _execute(
        self, spec: AlgorithmSpec, query: PreviewQuery
    ) -> Optional[DiscoveryResult]:
        context = self.context
        size = query.size()
        distance = query.distance()
        # The sweep fast path stands in for the *built-in* Apriori only;
        # a shadowing re-registration under the same name must win.
        if distance is not None and spec.runner is _builtin_apriori_runner:
            return self._execute_apriori(context, size, distance)
        return spec.run(context, size, distance)

    # -- Apriori sweep fast path ---------------------------------------
    def _apriori_profiles(
        self,
        context: ScoringContext,
        size: SizeConstraint,
        distance: DistanceConstraint,
    ) -> List[Optional[AllocationProfile]]:
        """Clique subsets + allocation profiles for one ``(k, d, mode)``.

        The subsets are enumerated once per generation (order matching
        ``apriori_discover`` so score ties resolve identically).  The
        profiles are first built capped at this query's ``n - k`` — a
        one-shot query then costs no more than the legacy allocation —
        and rebuilt uncapped the first time a larger budget arrives,
        after which every ``n`` along a sweep reuses them.
        """
        group_key = (size.k, distance.d, distance.mode.value)
        subsets = self._subsets.get(group_key)
        if subsets is None:
            key_pool = eligible_key_types(context)
            oracle = context.schema.distance_oracle()

            def adjacent(a: TypeId, b: TypeId) -> bool:
                return distance.pair_ok(oracle, a, b)

            subsets = list(
                k_cliques(key_pool, adjacent, size.k, backend="apriori")
            )
            self._subsets[group_key] = subsets

        extra_cap = size.n - size.k
        profiles = self._profiles.get(group_key)
        if profiles is not None and all(
            profile is None or profile.covers(extra_cap) for profile in profiles
        ):
            return profiles
        pool = context.candidate_pool()
        cap = extra_cap if profiles is None else None  # 2nd build: exhaustive
        profiles = [
            build_allocation_profile(pool, keys, cap=cap) for keys in subsets
        ]
        self._profiles[group_key] = profiles
        return profiles

    def _execute_apriori(
        self,
        context: ScoringContext,
        size: SizeConstraint,
        distance: DistanceConstraint,
    ) -> Optional[DiscoveryResult]:
        """Answer one tight/diverse point from the shared profiles.

        Produces the same :class:`DiscoveryResult` (preview, score and
        bookkeeping) as :func:`repro.core.apriori.apriori_discover`.
        """
        validate_constraints(size, distance, eligible_key_types(context))
        profiles = self._apriori_profiles(context, size, distance)
        if not profiles:
            return None
        extra_cap = size.n - size.k
        best_score = _NEG_INF
        best: Optional[AllocationProfile] = None
        for profile in profiles:
            if profile is None:
                continue
            score = profile.score_at(extra_cap)
            if score > best_score:
                best_score = score
                best = profile
        if best is None:
            return None
        pool = context.candidate_pool()
        return DiscoveryResult(
            preview=best.preview_at(pool, extra_cap),
            score=best_score,
            algorithm="apriori[apriori]",
            key_scorer=context.key_scorer_name,
            nonkey_scorer=context.nonkey_scorer_name,
            candidates_examined=len(profiles),
        )
