"""Numeric attributes in preview tables (paper future work #3).

The paper's pipeline removes numeric values from the Freebase dump and
explicitly defers "incorporating numeric attributes into preview tables".
This module adds that capability:

* :class:`NumericAttributeStore` holds literal-valued attributes
  (``entity --height--> 1.88``) alongside an entity graph, with per
  (entity type, attribute name) aggregates maintained on insert;
* numeric candidates are scored by **coverage** (how many literals of
  that name the type's entities carry) — the same intuition as the
  paper's relational coverage measure;
* :func:`augment_preview` appends the best numeric attributes to each
  preview table under an attribute budget, and
  :func:`render_numeric_summary` displays per-column summary statistics
  (count / min / mean / max), the preview-friendly form of a numeric
  column.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.preview import Preview, PreviewTable
from ..exceptions import ModelError
from ..model.entity_graph import EntityGraph
from ..model.ids import EntityId, TypeId


@dataclass
class NumericSummary:
    """Streaming summary statistics of one numeric attribute on one type."""

    count: int = 0
    total: float = 0.0
    total_sq: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def add(self, value: float) -> None:
        """Fold one value into the running aggregates."""
        self.count += 1
        self.total += value
        self.total_sq += value * value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        """Arithmetic mean (0.0 when empty)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count

    @property
    def variance(self) -> float:
        """Population variance (0.0 when empty)."""
        if self.count == 0:
            return 0.0
        m = self.mean
        return max(0.0, self.total_sq / self.count - m * m)

    @property
    def stddev(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)


class NumericAttributeStore:
    """Literal attributes over an entity graph, with per-type aggregates."""

    def __init__(self, entity_graph: EntityGraph) -> None:
        self._graph = entity_graph
        # (entity, name) -> list of values (literals may repeat).
        self._values: Dict[Tuple[EntityId, str], List[float]] = defaultdict(list)
        # (type, name) -> summary across all entities of that type.
        self._summaries: Dict[Tuple[TypeId, str], NumericSummary] = defaultdict(
            NumericSummary
        )

    def add(self, entity: EntityId, name: str, value: float) -> None:
        """Attach one literal; the entity must exist in the graph."""
        if not self._graph.has_entity(entity):
            from ..exceptions import UnknownEntityError

            raise UnknownEntityError(entity)
        try:
            numeric = float(value)
        except (TypeError, ValueError):
            raise ModelError(f"literal {value!r} on {entity!r}.{name} is not numeric")
        if math.isnan(numeric):
            raise ModelError(f"NaN literal on {entity!r}.{name}")
        self._values[(entity, name)].append(numeric)
        for type_name in self._graph.types_of(entity):
            self._summaries[(type_name, name)].add(numeric)

    def values(self, entity: EntityId, name: str) -> List[float]:
        """Recorded values for ``(entity, name)``."""
        return list(self._values.get((entity, name), ()))

    def summary(self, type_name: TypeId, name: str) -> Optional[NumericSummary]:
        """Aggregate summary for ``(type_name, name)``, or None."""
        return self._summaries.get((type_name, name))

    def candidates(self, type_name: TypeId) -> List[Tuple[str, NumericSummary]]:
        """Numeric attribute names of ``type_name`` by descending coverage."""
        found = [
            (name, summary)
            for (owner, name), summary in self._summaries.items()
            if owner == type_name
        ]
        found.sort(key=lambda item: (-item[1].count, item[0]))
        return found

    def coverage(self, type_name: TypeId, name: str) -> int:
        """The coverage score of a numeric candidate (literal count)."""
        summary = self._summaries.get((type_name, name))
        return summary.count if summary else 0


@dataclass(frozen=True)
class AugmentedTable:
    """A preview table plus its selected numeric attributes."""

    table: PreviewTable
    numeric: Tuple[Tuple[str, NumericSummary], ...]


def augment_preview(
    preview: Preview,
    store: NumericAttributeStore,
    per_table_budget: int = 2,
) -> List[AugmentedTable]:
    """Attach the top numeric attributes (by coverage) to each table."""
    if per_table_budget < 0:
        raise ModelError(f"budget must be non-negative, got {per_table_budget}")
    augmented = []
    for table in preview.tables:
        numeric = tuple(store.candidates(table.key)[:per_table_budget])
        augmented.append(AugmentedTable(table=table, numeric=numeric))
    return augmented


def render_numeric_summary(augmented: AugmentedTable) -> str:
    """One-line-per-attribute numeric digest for a preview table."""
    lines = [f"[{augmented.table.key}] numeric attributes:"]
    if not augmented.numeric:
        lines.append("  (none)")
    for name, summary in augmented.numeric:
        lines.append(
            f"  {name}: n={summary.count} min={summary.minimum:g} "
            f"mean={summary.mean:.4g} max={summary.maximum:g} "
            f"sd={summary.stddev:.4g}"
        )
    return "\n".join(lines)
