"""Representative tuple selection (paper future work #2).

The paper displays *randomly sampled* tuples and leaves "how to choose
the most representative tuples" to future study.  This module implements
a greedy representative selector:

* a tuple is more useful when it has **non-empty values** on more of the
  table's attributes (Fig. 2's ``t3.Genres = -`` teaches the reader
  nothing about the Genres attribute);
* a set of tuples is more useful when it **covers more distinct values**
  (two tuples with identical genre sets are redundant);
* ties break toward entities with higher degree (prominent entities are
  recognizable anchors for the reader).

The selector greedily maximizes a weighted marginal gain of these three
signals — the classic submodular-coverage recipe, so greedy is a (1-1/e)
approximation to the optimal selection under the gain function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from ..core.materialize import (
    DEFAULT_SAMPLE_SIZE,
    MaterializedRow,
    MaterializedTable,
)
from ..core.preview import Preview, PreviewTable
from ..exceptions import DiscoveryError
from ..model.entity_graph import EntityGraph
from ..model.ids import EntityId

#: Relative weights of the three gain components.
NON_EMPTY_WEIGHT = 1.0
NEW_VALUE_WEIGHT = 2.0
PROMINENCE_WEIGHT = 0.05


@dataclass(frozen=True)
class SelectionDiagnostics:
    """Quality metrics of a tuple selection (used by tests and benches)."""

    non_empty_cells: int
    distinct_values_covered: int
    total_cells: int

    @property
    def fill_ratio(self) -> float:
        """Fraction of preview cells that are non-empty."""
        if self.total_cells == 0:
            return 0.0
        return self.non_empty_cells / self.total_cells


def _row_values(
    entity_graph: EntityGraph, table: PreviewTable, entity: EntityId
) -> Tuple[FrozenSet[EntityId], ...]:
    return tuple(
        entity_graph.attribute_value(entity, attribute)
        for attribute in table.nonkey
    )


def _prominence(entity_graph: EntityGraph, entity: EntityId) -> int:
    """Total degree of the entity across all its relationship types."""
    total = 0
    for rel_type in entity_graph.relationship_types():
        total += len(entity_graph.targets(entity, rel_type))
        total += len(entity_graph.sources(entity, rel_type))
    return total


def select_representative_tuples(
    entity_graph: EntityGraph,
    table: PreviewTable,
    sample_size: int = DEFAULT_SAMPLE_SIZE,
) -> MaterializedTable:
    """Greedy representative selection of ``sample_size`` tuples.

    Deterministic: candidates are processed in sorted entity order and
    the greedy argmax breaks ties lexically.
    """
    if sample_size < 0:
        raise DiscoveryError(f"sample_size must be non-negative, got {sample_size}")
    entities = sorted(entity_graph.entities_of_type(table.key))
    total = len(entities)
    values: Dict[EntityId, Tuple[FrozenSet[EntityId], ...]] = {
        entity: _row_values(entity_graph, table, entity) for entity in entities
    }
    prominence = {entity: _prominence(entity_graph, entity) for entity in entities}
    max_prominence = max(prominence.values(), default=1) or 1

    chosen: List[EntityId] = []
    covered: Set[Tuple[int, FrozenSet[EntityId]]] = set()
    remaining = set(entities)
    target = min(sample_size, total)
    while len(chosen) < target:
        best_entity = None
        best_gain = (-1.0, "")
        for entity in remaining:
            gain = 0.0
            for idx, value in enumerate(values[entity]):
                if not value:
                    continue
                gain += NON_EMPTY_WEIGHT
                if (idx, value) not in covered:
                    gain += NEW_VALUE_WEIGHT
            gain += PROMINENCE_WEIGHT * prominence[entity] / max_prominence
            # Lexically *smaller* names win ties.
            if gain > best_gain[0] or (
                gain == best_gain[0] and entity < best_gain[1]
            ):
                best_gain = (gain, entity)
                best_entity = entity
        if best_entity is None:
            break
        chosen.append(best_entity)
        remaining.discard(best_entity)
        for idx, value in enumerate(values[best_entity]):
            if value:
                covered.add((idx, value))

    rows = tuple(
        MaterializedRow(key_entity=entity, values=values[entity])
        for entity in chosen
    )
    return MaterializedTable(table=table, rows=rows, total_tuples=total)


def materialize_preview_representative(
    entity_graph: EntityGraph,
    preview: Preview,
    sample_size: int = DEFAULT_SAMPLE_SIZE,
) -> List[MaterializedTable]:
    """Representative materialization of every table of ``preview``."""
    return [
        select_representative_tuples(entity_graph, table, sample_size=sample_size)
        for table in preview.tables
    ]


def selection_diagnostics(mat: MaterializedTable) -> SelectionDiagnostics:
    """Fill ratio and value coverage of a materialized table."""
    non_empty = 0
    distinct: Set[Tuple[int, FrozenSet[EntityId]]] = set()
    for row in mat.rows:
        for idx, value in enumerate(row.values):
            if value:
                non_empty += 1
                distinct.add((idx, value))
    return SelectionDiagnostics(
        non_empty_cells=non_empty,
        distinct_values_covered=len(distinct),
        total_cells=len(mat.rows) * mat.table.width,
    )
