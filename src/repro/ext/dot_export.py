"""Graphviz DOT export for schema graphs and previews.

The user study's "Graph" approach presents the schema graph itself; this
module makes both that presentation and discovered previews exportable
as DOT for external rendering (``dot -Tsvg``).  Previews render as their
defining star-shaped subgraphs (Definition 1), with key attributes
emphasized — the visual language of the paper's Fig. 3 annotations.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..core.preview import Preview
from ..model.schema_graph import SchemaGraph


def _quote(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def schema_graph_to_dot(
    schema: SchemaGraph,
    name: str = "schema",
    highlight: Optional[Iterable[str]] = None,
) -> str:
    """The full schema graph as a DOT digraph.

    Node labels carry entity populations; edge labels carry relationship
    names and instance counts.  ``highlight`` nodes are filled (used to
    mark a preview's key attributes on top of the full schema).
    """
    marked = set(highlight or ())
    lines = [f"digraph {_quote(name)} {{", "  rankdir=LR;", "  node [shape=box];"]
    for type_name in schema.entity_types():
        count = schema.entity_count(type_name)
        attrs = [f"label={_quote(f'{type_name} ({count})')}"]
        if type_name in marked:
            attrs.append("style=filled")
            attrs.append('fillcolor="lightblue"')
        lines.append(f"  {_quote(type_name)} [{', '.join(attrs)}];")
    for rel in schema.relationship_types():
        weight = schema.relationship_count(rel)
        lines.append(
            f"  {_quote(rel.source_type)} -> {_quote(rel.target_type)} "
            f"[label={_quote(f'{rel.name} [{weight}]')}];"
        )
    lines.append("}")
    return "\n".join(lines)


def preview_to_dot(preview: Preview, name: str = "preview") -> str:
    """A preview as its star-shaped schema subgraphs (one cluster each)."""
    lines = [f"digraph {_quote(name)} {{", "  rankdir=LR;", "  node [shape=box];"]
    emitted_nodes = set()

    def ensure_node(node: str, key: bool = False) -> None:
        if node in emitted_nodes:
            return
        emitted_nodes.add(node)
        style = (
            "style=filled, fillcolor=\"lightblue\", penwidth=2" if key else ""
        )
        attrs = f" [{style}]" if style else ""
        lines.append(f"  {_quote(node)}{attrs};")

    # Emit all key nodes first so a type that is another table's neighbor
    # still gets its key styling.
    for table in preview.tables:
        ensure_node(table.key, key=True)
    for index, table in enumerate(preview.tables):
        lines.append(f"  subgraph cluster_{index} {{")
        lines.append(f"    label={_quote(f'table: {table.key}')};")
        lines.append("  }")
        for attribute in table.nonkey:
            rel = attribute.rel_type
            ensure_node(rel.source_type)
            ensure_node(rel.target_type)
            lines.append(
                f"  {_quote(rel.source_type)} -> {_quote(rel.target_type)} "
                f"[label={_quote(rel.name)}];"
            )
    lines.append("}")
    return "\n".join(lines)
