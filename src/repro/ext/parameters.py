"""Parameter suggestion (paper future work #4) and the tight/diverse
choice (future work #1).

The paper assumes k, n, d are "manually chosen by interactive users or
automatically suggested based on the size of a display space" and lists
both the suggestion problem and "guidelines and automatic techniques for
choosing between tight and diverse previews" as future directions.

Heuristics implemented here:

* **Size from display budget** — a preview table costs one header row
  per table plus its sampled tuples, and one column per attribute.
  Given a rows×cols character-free budget, solve for the largest (k, n)
  that fits, clamped to what the schema can actually supply.
* **Distance from the distance distribution** — a tight bound d should
  admit a meaningful-but-selective fraction of type pairs (default: the
  ~25th percentile of pairwise distances), a diverse bound the ~75th.
  This directly avoids the regimes the paper flags as pathological
  (tight d=6 / diverse d=2 on music: "most previews become tight").
* **Tight vs. diverse** — discover both, then compare on *score retention*
  (fraction of the unconstrained optimum each retains) and *coverage
  spread* (how many distinct schema regions the keys touch).  Dense,
  hub-centric schemas retain almost all score under a tight constraint
  (recommend tight — more coherent, and the user study found it fastest);
  flat schemas lose little by diversifying (recommend diverse).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from ..core.apriori import apriori_discover
from ..core.constraints import DistanceConstraint, SizeConstraint
from ..core.dynamic_prog import dynamic_programming_discover
from ..core.preview import DiscoveryResult
from ..exceptions import DiscoveryError, InfeasiblePreviewError
from ..model.schema_graph import SchemaGraph
from ..scoring.preview_score import ScoringContext

#: Display cost model: rows consumed per table beyond its tuples.
HEADER_ROWS_PER_TABLE = 3
DEFAULT_TUPLES_SHOWN = 3
#: Columns consumed per attribute (key column excluded).
COLS_PER_ATTRIBUTE = 1


@dataclass(frozen=True)
class SizeSuggestion:
    """A suggested (k, n) with the budget arithmetic that produced it."""

    k: int
    n: int
    display_rows: int
    display_cols: int

    def as_constraint(self) -> SizeConstraint:
        """This suggestion as a :class:`SizeConstraint`."""
        return SizeConstraint(k=self.k, n=self.n)


def suggest_size(
    schema: SchemaGraph,
    display_rows: int,
    display_cols: int,
    tuples_per_table: int = DEFAULT_TUPLES_SHOWN,
) -> SizeSuggestion:
    """The largest (k, n) fitting a rows×cols display budget.

    Rows bound k (each table costs header rows plus its tuples); columns
    bound the attributes per table and hence n.  Both are clamped to the
    schema's actual capacity.
    """
    if display_rows < HEADER_ROWS_PER_TABLE + 1 or display_cols < 2:
        raise DiscoveryError(
            f"display budget too small: {display_rows}x{display_cols}"
        )
    rows_per_table = HEADER_ROWS_PER_TABLE + tuples_per_table
    k = max(1, display_rows // rows_per_table)
    k = min(k, schema.entity_type_count)
    attrs_per_table = max(1, (display_cols - 1) // COLS_PER_ATTRIBUTE - 1)
    n = min(k * attrs_per_table, schema.candidate_attribute_count)
    n = max(n, k)
    return SizeSuggestion(
        k=k, n=n, display_rows=display_rows, display_cols=display_cols
    )


def distance_quantile(schema: SchemaGraph, quantile: float) -> int:
    """The given quantile of the finite pairwise type-distance distribution."""
    if not 0.0 <= quantile <= 1.0:
        raise DiscoveryError(f"quantile must be in [0, 1], got {quantile}")
    oracle = schema.distance_oracle()
    types = schema.entity_types()
    distances: List[int] = []
    for i, a in enumerate(types):
        for b in types[i + 1:]:
            d = oracle.distance(a, b)
            if d != math.inf:
                distances.append(int(d))
    if not distances:
        raise DiscoveryError("schema has no connected type pairs")
    distances.sort()
    index = min(len(distances) - 1, int(quantile * len(distances)))
    return distances[index]


def suggest_tight_distance(schema: SchemaGraph) -> int:
    """A selective-but-satisfiable tight bound (~25th percentile, >= 1)."""
    return max(1, distance_quantile(schema, 0.25))


def suggest_diverse_distance(schema: SchemaGraph) -> int:
    """A selective-but-satisfiable diverse bound (~75th percentile, >= 2)."""
    return max(2, distance_quantile(schema, 0.75))


@dataclass(frozen=True)
class FlavourRecommendation:
    """Outcome of the automatic tight-vs-diverse choice."""

    recommendation: str  # "tight" | "diverse" | "concise"
    tight: Optional[DiscoveryResult]
    diverse: Optional[DiscoveryResult]
    concise: DiscoveryResult
    tight_retention: float
    diverse_retention: float

    def recommended_result(self) -> DiscoveryResult:
        """The discovery result matching the recommendation."""
        if self.recommendation == "tight" and self.tight is not None:
            return self.tight
        if self.recommendation == "diverse" and self.diverse is not None:
            return self.diverse
        return self.concise


def choose_preview_flavour(
    context: ScoringContext,
    size: SizeConstraint,
    tight_d: Optional[int] = None,
    diverse_d: Optional[int] = None,
    retention_threshold: float = 0.8,
) -> FlavourRecommendation:
    """Recommend tight, diverse or unconstrained-concise previews.

    Policy: prefer the *tight* preview when it retains at least
    ``retention_threshold`` of the unconstrained optimum's score (the
    user study found tight previews fastest and most accurate to use);
    otherwise prefer *diverse* under the same bar (the score lives in
    scattered regions, so show the spread); otherwise fall back to the
    plain concise optimum.
    """
    schema = context.schema
    concise = dynamic_programming_discover(context, size)
    if concise is None:
        raise InfeasiblePreviewError(
            f"no concise preview exists for k={size.k}, n={size.n}"
        )
    tight_d = suggest_tight_distance(schema) if tight_d is None else tight_d
    diverse_d = suggest_diverse_distance(schema) if diverse_d is None else diverse_d
    tight = apriori_discover(context, size, DistanceConstraint.tight(tight_d))
    diverse = apriori_discover(context, size, DistanceConstraint.diverse(diverse_d))
    tight_retention = tight.score / concise.score if tight else 0.0
    diverse_retention = diverse.score / concise.score if diverse else 0.0

    if tight is not None and tight_retention >= retention_threshold:
        recommendation = "tight"
    elif diverse is not None and diverse_retention >= retention_threshold:
        recommendation = "diverse"
    else:
        recommendation = "concise"
    return FlavourRecommendation(
        recommendation=recommendation,
        tight=tight,
        diverse=diverse,
        concise=concise,
        tight_retention=tight_retention,
        diverse_retention=diverse_retention,
    )
