"""Extensions: the paper's Sec. 8 future-work items, implemented.

* representative tuple selection (future work #2);
* parameter suggestion and automatic tight/diverse choice (#4 and #1);
* numeric attributes in previews (#3);
* incremental maintenance of schema graphs and coverage scores (the
  Sec. 5 claim whose "detailed discussion" the paper omits);
* DOT export of schema graphs and previews.
"""

from .dot_export import preview_to_dot, schema_graph_to_dot
from .incremental import IncrementalEntityGraph
from .multiway import (
    MediatorProfile,
    detect_mediator_types,
    format_multiway_cell,
    mediator_summary,
    multiway_attribute_values,
)
from .numeric import (
    AugmentedTable,
    NumericAttributeStore,
    NumericSummary,
    augment_preview,
    render_numeric_summary,
)
from .parameters import (
    FlavourRecommendation,
    SizeSuggestion,
    choose_preview_flavour,
    distance_quantile,
    suggest_diverse_distance,
    suggest_size,
    suggest_tight_distance,
)
from .tuple_selection import (
    SelectionDiagnostics,
    materialize_preview_representative,
    select_representative_tuples,
    selection_diagnostics,
)

__all__ = [
    "AugmentedTable",
    "FlavourRecommendation",
    "IncrementalEntityGraph",
    "MediatorProfile",
    "detect_mediator_types",
    "format_multiway_cell",
    "mediator_summary",
    "multiway_attribute_values",
    "NumericAttributeStore",
    "NumericSummary",
    "SelectionDiagnostics",
    "SizeSuggestion",
    "augment_preview",
    "choose_preview_flavour",
    "distance_quantile",
    "materialize_preview_representative",
    "preview_to_dot",
    "render_numeric_summary",
    "schema_graph_to_dot",
    "select_representative_tuples",
    "selection_diagnostics",
    "suggest_diverse_distance",
    "suggest_size",
    "suggest_tight_distance",
]
