"""Multi-way relationships through mediator types (Appendix B).

Freebase models n-ary facts with mediator nodes (CVTs): *Agent J is a
FILM CHARACTER played by FILM ACTOR Will Smith in FILM Men in Black* is a
PERFORMANCE node with one edge to each participant.  The paper's sample
previews surface these as multi-way non-key attributes ("Performances
(FILM ACTOR, FILM CHARACTER)") and present "values for all participating
entity types in this relationship"; it notes table-widening concerns and
leaves the mechanics open.

This module supplies those mechanics:

* :func:`detect_mediator_types` — find CVT-like types: every entity is a
  small-degree junction whose incident relationship types fan out to at
  least two *other* entity types, with at most one neighbor per role
  (n-ary facts have one filler per role);
* :func:`multiway_attribute_values` — given a table's key entity and a
  relationship into a mediator type, join *through* the mediator and
  return role-labelled tuples — the paper's "values for all participating
  entity types";
* :func:`format_multiway_cell` — compact cell rendering
  (``Men in Black / Will Smith``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import ModelError
from ..model.attributes import NonKeyAttribute
from ..model.entity_graph import EntityGraph
from ..model.ids import EntityId, TypeId
from ..model.schema_graph import SchemaGraph

#: Upper bound on a mediator entity's total degree: CVT nodes are small
#: junctions (one filler per role plus the anchoring edge).
MAX_MEDIATOR_DEGREE = 6


@dataclass(frozen=True)
class MediatorProfile:
    """A detected mediator (CVT-like) type and its role structure."""

    mediator: TypeId
    #: Role name -> participant entity type, for every incident role.
    roles: Dict[str, TypeId]

    @property
    def arity(self) -> int:
        """Number of roles in this multi-way relationship."""
        return len(self.roles)


def _incident_roles(schema: SchemaGraph, type_name: TypeId) -> Dict[str, TypeId]:
    """Role map of a type: each incident relationship's far-end type."""
    roles: Dict[str, TypeId] = {}
    for attribute in schema.candidate_attributes(type_name):
        roles[attribute.rel_type.name] = attribute.target_type()
    return roles


def detect_mediator_types(
    entity_graph: EntityGraph,
    schema: SchemaGraph,
    max_degree: int = MAX_MEDIATOR_DEGREE,
) -> List[MediatorProfile]:
    """Detect CVT-like mediator types.

    A type qualifies when it has at least two distinct roles (incident
    relationship types reaching ≥ 2 distinct participant types) and every
    one of its entities (a) stays under the degree cap and (b) has at
    most one neighbor per role — the defining shape of an n-ary fact
    node.  Types with no entities never qualify.
    """
    profiles: List[MediatorProfile] = []
    for type_name in schema.entity_types():
        roles = _incident_roles(schema, type_name)
        participant_types = set(roles.values()) - {type_name}
        if len(roles) < 2 or len(participant_types) < 2:
            continue
        entities = entity_graph.entities_of_type(type_name)
        if not entities:
            continue
        qualifies = True
        for entity in entities:
            total = 0
            for attribute in schema.candidate_attributes(type_name):
                fillers = entity_graph.attribute_value(entity, attribute)
                if len(fillers) > 1:
                    qualifies = False
                    break
                total += len(fillers)
            if not qualifies or total > max_degree or total < 2:
                qualifies = False
                break
        if qualifies:
            profiles.append(MediatorProfile(mediator=type_name, roles=roles))
    return profiles


#: One multi-way value: role name -> the filler entity (None if absent).
MultiwayValue = Tuple[Tuple[str, Optional[EntityId]], ...]


def multiway_attribute_values(
    entity_graph: EntityGraph,
    schema: SchemaGraph,
    key_entity: EntityId,
    into_mediator: NonKeyAttribute,
    profile: MediatorProfile,
) -> List[MultiwayValue]:
    """Join through a mediator and return role-labelled value tuples.

    ``into_mediator`` must point from the key entity's type into the
    mediator type; each mediator node reached contributes one tuple with
    the fillers of every *other* role.
    """
    if into_mediator.target_type() != profile.mediator:
        raise ModelError(
            f"attribute {into_mediator} does not reach mediator "
            f"{profile.mediator!r}"
        )
    results: List[MultiwayValue] = []
    anchor_role = into_mediator.rel_type.name
    mediators = entity_graph.attribute_value(key_entity, into_mediator)
    for node in sorted(mediators):
        fillers: List[Tuple[str, Optional[EntityId]]] = []
        for attribute in schema.candidate_attributes(profile.mediator):
            role = attribute.rel_type.name
            if role == anchor_role:
                continue
            value = entity_graph.attribute_value(node, attribute)
            fillers.append((role, next(iter(value)) if value else None))
        results.append(tuple(sorted(fillers)))
    return results


def format_multiway_cell(values: Sequence[MultiwayValue]) -> str:
    """Render multi-way values compactly: ``film / actor; film / actor``."""
    if not values:
        return "-"
    parts = []
    for value in values:
        fillers = [filler if filler is not None else "-" for _role, filler in value]
        parts.append(" / ".join(fillers))
    return "; ".join(parts)


def mediator_summary(
    entity_graph: EntityGraph, schema: SchemaGraph
) -> Dict[TypeId, int]:
    """Mediator type -> number of n-ary facts (entities) it mediates."""
    return {
        profile.mediator: entity_graph.type_count(profile.mediator)
        for profile in detect_mediator_types(entity_graph, schema)
    }
