"""Incremental maintenance of schema graphs and coverage scores.

Sec. 5 of the paper asserts that the schema graph and the scoring
measures "can be incrementally updated when the underlying entity graph
is updated (detailed discussion omitted)" — while optimal previews
cannot.  This module supplies that omitted machinery for the coverage
measures (the aggregate-count ones, where incrementality is exact):

* :class:`IncrementalEntityGraph` wraps an :class:`EntityGraph` and, on
  every mutation, updates the derived :class:`SchemaGraph` counts and the
  coverage key/non-key scores in O(1) per inserted entity/relationship —
  no rescan of the data;
* a *generation* counter invalidates any cached discovery result, making
  the paper's "previews cannot be incrementally updated" explicit in the
  API: callers re-run discovery (cheap — Fig. 8) against fresh scores.
  The counter is the invalidation signal for the query-engine layer:
  :meth:`IncrementalEntityGraph.engine` returns a
  :class:`~repro.engine.PreviewEngine` bound to this graph, whose
  memoized results and sweep artifacts are dropped automatically the
  moment a mutation bumps the generation.

Since the delta-pipeline refactor the invalidation signal is no longer
just a counter: the underlying graph's
:class:`~repro.model.mutation_log.MutationLog` records *which* key types
and relationship types every mutation dirtied, and whether the schema
graph itself changed (a *structural* mutation).  Downstream caches
consume that changelog through :meth:`IncrementalEntityGraph.dirty_since`
at three granularities:

* **none** — an empty delta (pure no-op mutations): every cache is kept;
* **type-scoped** — a non-structural delta with delta-capable scorers
  (coverage): cached :class:`ScoringContext`\\ s are *patched* in
  O(delta) (only dirty types re-scored, candidate-pool rows shared for
  the rest), and the engine evicts only the memo entries whose key-type
  dependency set intersects the dirty types;
* **full** — structural mutations, non-delta scorers (random walk,
  entropy) or a baseline older than the changelog window: the affected
  context is rebuilt and the engine drops everything, exactly the seed
  behavior.

Random-walk and entropy measures are recomputed lazily on demand: both
are global fixed-point/histogram computations without an exact O(1)
delta form; the wrapper tracks dirtiness so the recomputation happens at
most once per batch of updates.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..core.preview import DiscoveryResult
from ..engine import PreviewEngine
from ..model.entity_graph import EntityGraph
from ..model.ids import EntityId, RelationshipTypeId, TypeId
from ..model.mutation_log import MutationDelta, MutationLog
from ..model.schema_graph import SchemaGraph
from ..scoring.preview_score import ScoringContext


class IncrementalEntityGraph:
    """An entity graph with incrementally maintained schema and scores."""

    def __init__(self, base: Optional[EntityGraph] = None, name: str = "incremental") -> None:
        self._graph = base if base is not None else EntityGraph(name=name)
        self._schema = SchemaGraph.from_entity_graph(self._graph)
        #: Coverage scores maintained exactly under mutation.
        self._key_coverage: Dict[TypeId, int] = {
            t: self._graph.type_count(t) for t in self._graph.entity_types()
        }
        self._nonkey_coverage: Dict[RelationshipTypeId, int] = {
            r: self._graph.relationship_count(r)
            for r in self._graph.relationship_types()
        }
        #: (key_scorer, nonkey_scorer) -> context; patched or rebuilt
        #: per combo when the generation moves (see :meth:`context`).
        self._cached_contexts: Dict[tuple, ScoringContext] = {}
        self._cached_context_generation = self.generation
        #: Last generation folded into _key_coverage/_nonkey_coverage/
        #: _schema (tracks direct-graph mutations; see
        #: :meth:`_reconcile_aggregates`).
        self._aggregate_generation = self.generation
        self._engines: Dict[tuple, PreviewEngine] = {}

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    @property
    def entity_graph(self) -> EntityGraph:
        """The wrapped (live) entity graph.

        Mutating it directly is allowed: the changelog observes every
        mutation, and the next read reconciles the maintained
        aggregates — but mutations through the wrapper's
        :meth:`add_entity` / :meth:`add_relationship` fold their deltas
        eagerly and are cheaper.
        """
        return self._graph

    @property
    def schema(self) -> SchemaGraph:
        """The maintained schema graph, reconciled with the changelog.

        Reconciling first means mutations applied to the wrapped graph
        directly are folded in (or, for structural ones, the schema is
        re-derived) before anything is built from it.
        """
        self._reconcile_aggregates()
        return self._schema

    @property
    def generation(self) -> int:
        """The underlying graph's mutation counter (cache epoch).

        Delegates to the graph's :class:`MutationLog`, so mutations
        applied to the wrapped :class:`EntityGraph` directly are
        observed too: the next refresh reconciles the maintained
        coverage aggregates (and, for structural changes, re-derives
        the schema graph) from the changelog before any context is
        patched or rebuilt.
        """
        return self._graph.mutation_log.generation

    @property
    def mutation_log(self) -> MutationLog:
        """The underlying graph's per-generation mutation changelog."""
        return self._graph.mutation_log

    def dirty_since(self, generation: int) -> MutationDelta:
        """Everything dirtied after ``generation`` (one folded delta).

        The engine-facing changelog read: a
        :class:`~repro.engine.PreviewEngine` bound to this graph calls
        it to decide between type-scoped eviction (non-structural
        deltas) and a full cache drop.
        """
        return self._graph.mutation_log.dirty_since(generation)

    def key_coverage(self, type_name: TypeId) -> int:
        """``Scov(τ)`` maintained incrementally (0 for unknown types)."""
        self._reconcile_aggregates()
        return self._key_coverage.get(type_name, 0)

    def nonkey_coverage(self, rel_type: RelationshipTypeId) -> int:
        """``Sτcov(γ)`` maintained incrementally (0 for unknown types)."""
        self._reconcile_aggregates()
        return self._nonkey_coverage.get(rel_type, 0)

    # ------------------------------------------------------------------
    # Mutation (O(1) score maintenance)
    # ------------------------------------------------------------------
    def add_entity(self, entity: EntityId, types: Iterable[TypeId]) -> None:
        """Add ``entity`` with ``types``, maintaining scores in O(1).

        Parameters
        ----------
        entity:
            The entity id (idempotent: re-adding unions the types).
        types:
            One or more entity types; a type never seen before makes
            this a *structural* mutation (downstream caches rebuild
            instead of patching).

        Raises
        ------
        SchemaViolationError
            If ``types`` is empty.
        """
        type_list = list(types)
        known_before = (
            self._graph.types_of(entity) if self._graph.has_entity(entity) else frozenset()
        )
        synced = self._aggregate_generation == self.generation
        self._graph.add_entity(entity, type_list)
        # Deterministic list order (not set order), matching the order
        # the graph itself registers first-seen types in.
        for type_name in dict.fromkeys(type_list):
            if type_name in known_before:
                continue
            self._key_coverage[type_name] = self._key_coverage.get(type_name, 0) + 1
            self._schema.add_entity_type(
                type_name, entity_count=self._key_coverage[type_name]
            )
        if synced:  # this call folded its own delta: advance the cursor
            self._aggregate_generation = self.generation

    def add_relationship(
        self, source: EntityId, target: EntityId, rel_type: RelationshipTypeId
    ) -> None:
        """Add one ``rel_type`` instance, maintaining scores in O(1).

        Parameters
        ----------
        source, target:
            Existing entity ids bearing ``rel_type.source_type`` /
            ``rel_type.target_type`` respectively.
        rel_type:
            The (name, source type, target type) relationship identity;
            a never-seen relationship type makes this a *structural*
            mutation.

        Raises
        ------
        UnknownEntityError
            If either endpoint does not exist.
        SchemaViolationError
            If an endpoint lacks the type the signature requires.
        """
        synced = self._aggregate_generation == self.generation
        self._graph.add_relationship(source, target, rel_type)
        self._nonkey_coverage[rel_type] = self._nonkey_coverage.get(rel_type, 0) + 1
        self._schema.add_relationship_type(rel_type, edge_count=1)
        if synced:  # this call folded its own delta: advance the cursor
            self._aggregate_generation = self.generation

    # ------------------------------------------------------------------
    # Discovery (never incremental — by design, matching the paper)
    # ------------------------------------------------------------------
    def context(
        self, key_scorer: str = "coverage", nonkey_scorer: str = "coverage"
    ) -> ScoringContext:
        """A scoring context current with the latest generation.

        Coverage contexts are *patched* in O(delta) across non-structural
        mutations (only the changelog's dirty types are re-scored; every
        other type shares its sorted candidates, weighted scores and
        prefix tables with the previous generation's context — see
        :meth:`ScoringContext.patched`).  Random-walk/entropy contexts
        trigger their lazy global recomputation here, and structural
        mutations rebuild from scratch; in both fallback cases only the
        affected (key_scorer, nonkey_scorer) entry is evicted, never the
        whole combo cache.
        """
        self._refresh_contexts()
        cache_key = (key_scorer, nonkey_scorer)
        context = self._cached_contexts.get(cache_key)
        if context is None:
            context = ScoringContext(
                self._schema,
                self._graph,
                key_scorer=key_scorer,
                nonkey_scorer=nonkey_scorer,
            )
            self._cached_contexts[cache_key] = context
        return context

    def _refresh_contexts(self) -> None:
        """Bring every cached scorer-combo context up to this generation.

        Three granularities, decided by the mutation changelog:

        * empty delta — no scores moved; every cached context is exact
          already and is kept untouched;
        * patchable delta — delta-capable combos are patched in
          O(delta); non-capable ones are dropped *individually* (they
          rebuild lazily on next request);
        * structural/overflowed delta — every cached context is stale in
          ways patching cannot express; drop them all.
        """
        generation = self.generation
        if self._cached_context_generation == generation:
            return
        # Aggregates first: a context can only be patched (or rebuilt)
        # against reconciled schema counts.
        self._reconcile_aggregates()
        delta = self._graph.mutation_log.dirty_since(
            self._cached_context_generation
        )
        if delta.empty:
            pass
        elif delta.patchable:
            self._cached_contexts = {
                cache_key: context.patched(delta.key_types)
                for cache_key, context in self._cached_contexts.items()
                if context.supports_delta
            }
        else:
            self._cached_contexts.clear()
        self._cached_context_generation = generation

    def _reconcile_aggregates(self) -> None:
        """Reconcile maintained counts with the graph's changelog.

        The cheap half of a refresh (no context patching): idempotent
        for mutations that came through this wrapper — they folded
        their counts in eagerly — it exists to absorb mutations applied
        to the wrapped graph *directly*, which the changelog observes
        but the eager per-call maintenance never saw.  Structural (or
        window-overflowed) deltas re-derive schema and counts from the
        graph in O(schema).
        """
        generation = self.generation
        if self._aggregate_generation == generation:
            return
        delta = self._graph.mutation_log.dirty_since(self._aggregate_generation)
        if delta.patchable:
            for type_name in delta.key_types:
                count = self._graph.type_count(type_name)
                if self._key_coverage.get(type_name) != count:
                    self._key_coverage[type_name] = count
                    self._schema.add_entity_type(type_name, entity_count=count)
            for rel_type in delta.rel_types:
                count = self._graph.relationship_count(rel_type)
                if self._nonkey_coverage.get(rel_type) != count:
                    self._nonkey_coverage[rel_type] = count
                    # Non-structural deltas only ever *increment* known
                    # relationship types: apply the difference.
                    self._schema.add_relationship_type(
                        rel_type,
                        edge_count=count
                        - self._schema.relationship_count(rel_type),
                    )
        elif not delta.empty:
            self._schema = SchemaGraph.from_entity_graph(self._graph)
            self._key_coverage = {
                t: self._graph.type_count(t) for t in self._graph.entity_types()
            }
            self._nonkey_coverage = {
                r: self._graph.relationship_count(r)
                for r in self._graph.relationship_types()
            }
        self._aggregate_generation = generation

    def engine(
        self, key_scorer: str = "coverage", nonkey_scorer: str = "coverage"
    ) -> PreviewEngine:
        """A :class:`PreviewEngine` wired to this graph's generation counter.

        One engine per scorer pair is kept alive for the graph's
        lifetime, so repeated queries between mutations hit its memo
        cache; any mutation bumps :attr:`generation`, which the engine
        observes and uses to drop every cached result.
        """
        cache_key = (key_scorer, nonkey_scorer)
        engine = self._engines.get(cache_key)
        if engine is None:
            engine = PreviewEngine(
                self, key_scorer=key_scorer, nonkey_scorer=nonkey_scorer
            )
            self._engines[cache_key] = engine
        return engine

    def discover(self, k: int, n: int, **kwargs) -> DiscoveryResult:
        """Run discovery against up-to-date scores.

        Optimal previews cannot be patched in place (Sec. 5), so this
        always re-solves — against incrementally maintained aggregates,
        through the generation-aware engine (a repeat of an unchanged
        query between mutations is answered from its cache).
        """
        key_scorer = kwargs.pop("key_scorer", "coverage")
        nonkey_scorer = kwargs.pop("nonkey_scorer", "coverage")
        return self.engine(key_scorer, nonkey_scorer).query(k=k, n=n, **kwargs)

    def verify_against_rescan(self, check_pools: bool = True) -> bool:
        """Cross-check incremental aggregates against a full rescan.

        Test/debug helper: returns True when every maintained count
        matches a freshly derived schema graph, *and* (with
        ``check_pools``, the default) when every cached scorer-combo
        context's :class:`~repro.scoring.CandidatePool` — the
        delta-patched flat arrays every discovery algorithm reads — is
        exactly equal to one built from scratch over the rescanned
        schema: same type order, key scores, sorted candidate lists
        with raw/weighted scores, prefix-sum tables and eligible set.
        Floats are compared exactly, not approximately: the delta path
        promises bit-identical state.
        """
        fresh = SchemaGraph.from_entity_graph(self._graph)
        for type_name in fresh.entity_types():
            if self._key_coverage.get(type_name, 0) != fresh.entity_count(type_name):
                return False
            if self._schema.entity_count(type_name) != fresh.entity_count(type_name):
                return False
        for rel_type in fresh.relationship_types():
            if self._nonkey_coverage.get(rel_type, 0) != fresh.relationship_count(
                rel_type
            ):
                return False
            if self._schema.relationship_count(rel_type) != fresh.relationship_count(
                rel_type
            ):
                return False
        if not check_pools:
            return True
        self._refresh_contexts()
        combos = list(self._cached_contexts) or [("coverage", "coverage")]
        for key_scorer, nonkey_scorer in combos:
            maintained = self.context(key_scorer, nonkey_scorer).candidate_pool()
            rebuilt = ScoringContext(
                fresh,
                self._graph,
                key_scorer=key_scorer,
                nonkey_scorer=nonkey_scorer,
            ).candidate_pool()
            # Frozen-dataclass equality covers every field (type order,
            # key scores, sorted candidates, weighted scores, prefix
            # tables, index, eligible) — including any added later.
            if maintained != rebuilt:
                return False
        return True
