"""Incremental maintenance of schema graphs and coverage scores.

Sec. 5 of the paper asserts that the schema graph and the scoring
measures "can be incrementally updated when the underlying entity graph
is updated (detailed discussion omitted)" — while optimal previews
cannot.  This module supplies that omitted machinery for the coverage
measures (the aggregate-count ones, where incrementality is exact):

* :class:`IncrementalEntityGraph` wraps an :class:`EntityGraph` and, on
  every mutation, updates the derived :class:`SchemaGraph` counts and the
  coverage key/non-key scores in O(1) per inserted entity/relationship —
  no rescan of the data;
* a *generation* counter invalidates any cached discovery result, making
  the paper's "previews cannot be incrementally updated" explicit in the
  API: callers re-run discovery (cheap — Fig. 8) against fresh scores.
  The counter is the invalidation signal for the query-engine layer:
  :meth:`IncrementalEntityGraph.engine` returns a
  :class:`~repro.engine.PreviewEngine` bound to this graph, whose
  memoized results and sweep artifacts are dropped automatically the
  moment a mutation bumps the generation.

Random-walk and entropy measures are recomputed lazily on demand: both
are global fixed-point/histogram computations without an exact O(1)
delta form; the wrapper tracks dirtiness so the recomputation happens at
most once per batch of updates.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..core.preview import DiscoveryResult
from ..engine import PreviewEngine
from ..model.entity_graph import EntityGraph
from ..model.ids import EntityId, RelationshipTypeId, TypeId
from ..model.schema_graph import SchemaGraph
from ..scoring.preview_score import ScoringContext


class IncrementalEntityGraph:
    """An entity graph with incrementally maintained schema and scores."""

    def __init__(self, base: Optional[EntityGraph] = None, name: str = "incremental") -> None:
        self._graph = base if base is not None else EntityGraph(name=name)
        self._schema = SchemaGraph.from_entity_graph(self._graph)
        #: Coverage scores maintained exactly under mutation.
        self._key_coverage: Dict[TypeId, int] = {
            t: self._graph.type_count(t) for t in self._graph.entity_types()
        }
        self._nonkey_coverage: Dict[RelationshipTypeId, int] = {
            r: self._graph.relationship_count(r)
            for r in self._graph.relationship_types()
        }
        #: Bumped on every mutation; cached previews must match it.
        self.generation = 0
        #: (key_scorer, nonkey_scorer) -> context, valid for one generation.
        self._cached_contexts: Dict[tuple, ScoringContext] = {}
        self._cached_context_generation = -1
        self._engines: Dict[tuple, PreviewEngine] = {}

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    @property
    def entity_graph(self) -> EntityGraph:
        return self._graph

    @property
    def schema(self) -> SchemaGraph:
        return self._schema

    def key_coverage(self, type_name: TypeId) -> int:
        """``Scov(τ)`` maintained incrementally (0 for unknown types)."""
        return self._key_coverage.get(type_name, 0)

    def nonkey_coverage(self, rel_type: RelationshipTypeId) -> int:
        """``Sτcov(γ)`` maintained incrementally (0 for unknown types)."""
        return self._nonkey_coverage.get(rel_type, 0)

    # ------------------------------------------------------------------
    # Mutation (O(1) score maintenance)
    # ------------------------------------------------------------------
    def add_entity(self, entity: EntityId, types: Iterable[TypeId]) -> None:
        type_list = list(types)
        known_before = (
            self._graph.types_of(entity) if self._graph.has_entity(entity) else frozenset()
        )
        self._graph.add_entity(entity, type_list)
        for type_name in set(type_list) - set(known_before):
            self._key_coverage[type_name] = self._key_coverage.get(type_name, 0) + 1
            self._schema.add_entity_type(
                type_name, entity_count=self._key_coverage[type_name]
            )
        self._touch()

    def add_relationship(
        self, source: EntityId, target: EntityId, rel_type: RelationshipTypeId
    ) -> None:
        self._graph.add_relationship(source, target, rel_type)
        self._nonkey_coverage[rel_type] = self._nonkey_coverage.get(rel_type, 0) + 1
        self._schema.add_relationship_type(rel_type, edge_count=1)
        self._touch()

    def _touch(self) -> None:
        self.generation += 1

    # ------------------------------------------------------------------
    # Discovery (never incremental — by design, matching the paper)
    # ------------------------------------------------------------------
    def context(
        self, key_scorer: str = "coverage", nonkey_scorer: str = "coverage"
    ) -> ScoringContext:
        """A scoring context current with the latest generation.

        Coverage contexts read the incrementally maintained aggregates
        (already folded into the schema graph); random-walk/entropy
        contexts trigger their lazy global recomputation here.
        """
        if self._cached_context_generation != self.generation:
            self._cached_contexts.clear()
            self._cached_context_generation = self.generation
        cache_key = (key_scorer, nonkey_scorer)
        context = self._cached_contexts.get(cache_key)
        if context is None:
            context = ScoringContext(
                self._schema,
                self._graph,
                key_scorer=key_scorer,
                nonkey_scorer=nonkey_scorer,
            )
            self._cached_contexts[cache_key] = context
        return context

    def engine(
        self, key_scorer: str = "coverage", nonkey_scorer: str = "coverage"
    ) -> PreviewEngine:
        """A :class:`PreviewEngine` wired to this graph's generation counter.

        One engine per scorer pair is kept alive for the graph's
        lifetime, so repeated queries between mutations hit its memo
        cache; any mutation bumps :attr:`generation`, which the engine
        observes and uses to drop every cached result.
        """
        cache_key = (key_scorer, nonkey_scorer)
        engine = self._engines.get(cache_key)
        if engine is None:
            engine = PreviewEngine(
                self, key_scorer=key_scorer, nonkey_scorer=nonkey_scorer
            )
            self._engines[cache_key] = engine
        return engine

    def discover(self, k: int, n: int, **kwargs) -> DiscoveryResult:
        """Run discovery against up-to-date scores.

        Optimal previews cannot be patched in place (Sec. 5), so this
        always re-solves — against incrementally maintained aggregates,
        through the generation-aware engine (a repeat of an unchanged
        query between mutations is answered from its cache).
        """
        key_scorer = kwargs.pop("key_scorer", "coverage")
        nonkey_scorer = kwargs.pop("nonkey_scorer", "coverage")
        return self.engine(key_scorer, nonkey_scorer).query(k=k, n=n, **kwargs)

    def verify_against_rescan(self) -> bool:
        """Cross-check incremental aggregates against a full rescan.

        Test/debug helper: returns True when every maintained count
        matches a freshly derived schema graph.
        """
        fresh = SchemaGraph.from_entity_graph(self._graph)
        for type_name in fresh.entity_types():
            if self._key_coverage.get(type_name, 0) != fresh.entity_count(type_name):
                return False
            if self._schema.entity_count(type_name) != fresh.entity_count(type_name):
                return False
        for rel_type in fresh.relationship_types():
            if self._nonkey_coverage.get(rel_type, 0) != fresh.relationship_count(
                rel_type
            ):
                return False
            if self._schema.relationship_count(rel_type) != fresh.relationship_count(
                rel_type
            ):
                return False
        return True
