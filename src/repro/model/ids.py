"""Identifier conventions for entities, entity types and relationship types.

The paper distinguishes surface names from underlying identifiers: two
relationship types may share the surface name ``Award Winners`` while being
distinct types (FILM ACTOR -> AWARD vs. FILM DIRECTOR -> AWARD).  We make
that explicit with :class:`RelationshipTypeId`, a value object combining
the surface name with the source and target entity types — exactly the
information that, per Sec. 2, "determines the types of its two end
entities".

Entities and entity types are identified by plain strings (URIs or names);
light wrapper aliases are provided for documentation purposes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ModelError

#: An entity identifier (a URI or a unique name).
EntityId = str

#: An entity-type identifier (e.g. ``"FILM"`` or ``"/film/film"``).
TypeId = str


@dataclass(frozen=True, order=True)
class RelationshipTypeId:
    """A relationship type ``γ(source_type, target_type)`` with a surface name.

    Equality includes the endpoint types, so two edges named ``Award
    Winners`` from different source types are different relationship types,
    matching the paper's data model.
    """

    name: str
    source_type: TypeId
    target_type: TypeId

    def __str__(self) -> str:
        return f"{self.name} ({self.source_type} -> {self.target_type})"

    def reversed(self) -> "RelationshipTypeId":
        """The same surface name viewed from the opposite direction.

        Note this is a *different* relationship type; it exists only when
        the data actually contains such edges.  Used by tooling that
        renders both directions.
        """
        return RelationshipTypeId(self.name, self.target_type, self.source_type)


def qualified_name(rel_type: RelationshipTypeId) -> str:
    """A compact unique string form used by persistence and rendering."""
    return f"{rel_type.source_type}|{rel_type.name}|{rel_type.target_type}"


def parse_qualified_name(text: str) -> RelationshipTypeId:
    """Inverse of :func:`qualified_name`.

    Raises :class:`~repro.exceptions.ModelError` if the text does not
    have exactly three ``|``-separated fields.
    """
    parts = text.split("|")
    if len(parts) != 3:
        raise ModelError(f"malformed qualified relationship type: {text!r}")
    source_type, name, target_type = parts
    return RelationshipTypeId(name=name, source_type=source_type, target_type=target_type)
