"""Triple codec: entity graphs <-> (subject, predicate, object) triples.

Entity graphs are "often represented as RDF triples" (Sec. 1).  This
module defines the canonical triple encoding used across the triple store
and the persistence layer:

* ``(entity, TYPE_PREDICATE, type_name)`` asserts entity typing;
* ``(source, rel-qualified-name, target)`` asserts one relationship
  instance, where the predicate is the ``source_type|name|target_type``
  qualified form so the relationship type (including endpoint types) is
  recoverable without joins.

The encoding is lossless for the paper's data model (named entities only —
the paper strips numeric literals from Freebase, and so do we).
"""

from __future__ import annotations

from typing import Iterable, Iterator, NamedTuple

from ..exceptions import ModelError
from .entity_graph import EntityGraph
from .ids import parse_qualified_name, qualified_name

#: Predicate used for entity-typing triples (rdf:type shorthand).
TYPE_PREDICATE = "a"


class Triple(NamedTuple):
    """One (subject, predicate, object) statement."""

    subject: str
    predicate: str
    object: str


def entity_graph_to_triples(graph: EntityGraph) -> Iterator[Triple]:
    """Encode ``graph`` losslessly as a deterministic triple stream.

    Typing triples come first (so decoding can validate relationship
    endpoints on the fly), then relationship triples.  Entities stream in
    insertion order and each entity's types in the graph's *global*
    first-seen type order — the same codec
    :func:`~repro.replicate.snapshot.capture_snapshot` uses — so a
    decoder replaying the stream reproduces the entity insertion order
    and the first-seen type order the scorers observe, not merely the
    same extensional content.
    """
    type_rank = {t: i for i, t in enumerate(graph.entity_types())}
    for entity in graph.entities():
        for type_name in sorted(graph.types_of(entity), key=type_rank.__getitem__):
            yield Triple(entity, TYPE_PREDICATE, type_name)
    for source, target, rel_type in graph.relationships():
        yield Triple(source, qualified_name(rel_type), target)


def triples_to_entity_graph(
    triples: Iterable[Triple], name: str = "entity-graph"
) -> EntityGraph:
    """Decode a triple stream produced by :func:`entity_graph_to_triples`.

    Typing triples may be interleaved with relationship triples as long as
    every entity is typed before it participates in a relationship;
    violations raise :class:`~repro.exceptions.ModelError` with the
    offending triple.
    """
    graph = EntityGraph(name=name)
    for triple in triples:
        subject, predicate, obj = triple
        if predicate == TYPE_PREDICATE:
            graph.add_entity(subject, [obj])
            continue
        try:
            rel_type = parse_qualified_name(predicate)
        except ModelError as exc:
            raise ModelError(f"bad relationship predicate in {triple!r}: {exc}") from exc
        graph.add_relationship(subject, obj, rel_type)
    return graph


def validate_round_trip(graph: EntityGraph) -> bool:
    """Re-encode/decode ``graph`` and compare aggregate statistics.

    Used by property tests; returns True when the round trip preserves
    entity counts, typing and per-relationship-type edge counts.
    """
    clone = triples_to_entity_graph(entity_graph_to_triples(graph), name=graph.name)
    if clone.stats() != graph.stats():
        return False
    for entity in graph.entities():
        if clone.types_of(entity) != graph.types_of(entity):
            return False
    for rel_type in graph.relationship_types():
        if clone.relationship_count(rel_type) != graph.relationship_count(rel_type):
            return False
    return True
