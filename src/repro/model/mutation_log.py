"""The per-generation mutation changelog of an entity graph.

The paper's discovery pipeline assumes a static graph; the ROADMAP's live
workloads do not.  Incremental maintenance needs more than a *count* of
mutations (the seed's ``generation`` integer): every consumer downstream
— scoring contexts, candidate pools, engine memos, worker snapshots —
wants to know *which* key types and relationship types a batch of
mutations touched, so it can patch in O(delta) instead of rebuilding in
O(graph).

:class:`MutationLog` records one entry per mutation, each tagged with the
generation it produced, the entity (key) types whose aggregates it
dirtied, the relationship types it touched, and whether it was
*structural*:

* **non-structural** — an entity of an already-known type, or a
  relationship instance of an already-known relationship type.  Schema
  vertices/edges, candidate-list membership ``Γτ``, type distances and
  eligibility are all unchanged; only the *scores* of the dirty types
  move.  This is the delta-patchable case.
* **structural** — a brand-new entity type or relationship type.  The
  schema graph itself changes (new vertex/edge), so distance oracles,
  clique enumerations and candidate lists may all shift: consumers must
  rebuild from scratch.

:meth:`MutationLog.dirty_since` folds every entry after a baseline
generation into one :class:`MutationDelta`.  The log retains a bounded
window (:attr:`MutationLog.max_entries`); a baseline older than the
window answers with ``full=True``, which consumers treat like a
structural change (full rebuild) — correct, merely less incremental.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, FrozenSet, Iterable, List, Tuple

from ..exceptions import ReplicationError
from .ids import RelationshipTypeId, TypeId

#: Default bound on retained entries; beyond it the oldest entries are
#: compacted into the "before the horizon" answer (``full=True``).
DEFAULT_MAX_ENTRIES = 4096


@dataclass(frozen=True)
class MutationDelta:
    """The union of every mutation between two generations.

    ``key_types`` are the entity types whose key/non-key scores may have
    changed; ``rel_types`` the relationship types whose instance counts
    moved.  ``structural`` means the schema graph gained a vertex or
    edge; ``full`` means the baseline predates the log's retention
    window (or the log never saw it) — both demand a full rebuild.
    """

    key_types: FrozenSet[TypeId] = frozenset()
    rel_types: FrozenSet[RelationshipTypeId] = frozenset()
    structural: bool = False
    full: bool = False

    @property
    def empty(self) -> bool:
        """True when nothing at all was dirtied (pure no-op mutations)."""
        return not (self.key_types or self.rel_types or self.structural or self.full)

    @property
    def patchable(self) -> bool:
        """True when O(delta) patching is sound (no schema change)."""
        return not (self.structural or self.full)

    # ------------------------------------------------------------------
    # Wire codec (the replication log ships deltas between processes)
    # ------------------------------------------------------------------
    def to_record(self) -> Dict[str, Any]:
        """The JSON-ready record of this delta.

        Relationship types serialize as ``[name, source_type,
        target_type]`` triples; both type lists are sorted so equal
        deltas produce byte-identical records (the replication stream
        is diffable the same way payloads are).
        """
        return {
            "key_types": sorted(self.key_types),
            "rel_types": sorted(
                [r.name, r.source_type, r.target_type] for r in self.rel_types
            ),
            "structural": self.structural,
            "full": self.full,
        }

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "MutationDelta":
        """Decode :meth:`to_record` output back into a delta.

        Raises
        ------
        ReplicationError
            For a malformed record (wrong field types or triple shapes).
        """
        if not isinstance(record, dict):
            raise ReplicationError(
                f"delta record must be an object, got {type(record).__name__}"
            )
        key_types = record.get("key_types", [])
        rel_types = record.get("rel_types", [])
        if not isinstance(key_types, list) or not all(
            isinstance(t, str) for t in key_types
        ):
            raise ReplicationError("delta 'key_types' must be a string array")
        if not isinstance(rel_types, list):
            raise ReplicationError("delta 'rel_types' must be an array")
        decoded = []
        for triple in rel_types:
            if (
                not isinstance(triple, (list, tuple))
                or len(triple) != 3
                or not all(isinstance(part, str) for part in triple)
            ):
                raise ReplicationError(
                    "delta 'rel_types' entries must be "
                    "[name, source_type, target_type] string triples"
                )
            decoded.append(RelationshipTypeId(*triple))
        return cls(
            key_types=frozenset(key_types),
            rel_types=frozenset(decoded),
            structural=bool(record.get("structural", False)),
            full=bool(record.get("full", False)),
        )


#: The "rebuild everything" answer for unknown/ancient baselines.
FULL_DELTA = MutationDelta(full=True)

#: One retained log entry: (generation, key_types, rel_types, structural).
_Entry = Tuple[int, Tuple[TypeId, ...], Tuple[RelationshipTypeId, ...], bool]


@dataclass
class MutationLog:
    """Append-only changelog, one entry per entity-graph mutation."""

    max_entries: int = DEFAULT_MAX_ENTRIES
    #: The generation produced by the latest mutation (0 = pristine).
    generation: int = 0
    _entries: Deque[_Entry] = field(default_factory=deque)
    #: Highest generation already compacted away; baselines below it can
    #: only be answered with :data:`FULL_DELTA`.
    _horizon: int = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(
        self,
        key_types: Iterable[TypeId] = (),
        rel_types: Iterable[RelationshipTypeId] = (),
        structural: bool = False,
    ) -> int:
        """Append one mutation entry; returns the new generation."""
        self.generation += 1
        self._entries.append(
            (self.generation, tuple(key_types), tuple(rel_types), structural)
        )
        if len(self._entries) > self.max_entries:
            oldest = self._entries.popleft()
            self._horizon = oldest[0]
        return self.generation

    # ------------------------------------------------------------------
    # Replication bootstrap
    # ------------------------------------------------------------------
    @property
    def horizon(self) -> int:
        """Highest generation already compacted out of the window.

        A baseline strictly below it can only be answered with
        :data:`FULL_DELTA`; replication subscribers that far behind must
        bootstrap from a snapshot instead of the delta stream.
        """
        return self._horizon

    def fast_forward(self, generation: int) -> None:
        """Jump this log to ``generation`` with an empty window.

        The snapshot-bootstrap primitive: a replica that restored a
        graph snapshot taken at writer generation ``G`` replayed fewer
        mutations than the writer ever applied (snapshots compact
        idempotent re-adds), so its log must be *renumbered* to ``G``
        for the replication stream's generation stamps to line up.
        After the jump the window is empty and the horizon equals the
        new generation — exactly the state of a fresh log that never
        saw the pre-snapshot history.

        Raises
        ------
        ReplicationError
            When ``generation`` is behind the log (generations are
            monotonic; rewinding would corrupt every downstream cache
            keyed by them).
        """
        if generation < self.generation:
            raise ReplicationError(
                f"cannot fast-forward a mutation log backwards "
                f"(at generation {self.generation}, asked for {generation})"
            )
        self.generation = generation
        self._horizon = generation
        self._entries.clear()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def entries_since(self, generation: int) -> List[Tuple[int, MutationDelta]]:
        """Per-generation deltas after ``generation``, oldest first.

        Unlike :meth:`dirty_since` (which folds the window into one
        delta), this preserves the per-mutation granularity the
        replication stream ships.

        Raises
        ------
        ReplicationError
            When ``generation`` predates the retention horizon — the
            per-entry history no longer exists and the caller must fall
            back to a snapshot.
        """
        if generation < self._horizon:
            raise ReplicationError(
                f"generation {generation} predates the retention horizon "
                f"{self._horizon}; bootstrap from a snapshot instead"
            )
        return [
            (entry_generation, MutationDelta(
                key_types=frozenset(entry_keys),
                rel_types=frozenset(entry_rels),
                structural=entry_structural,
            ))
            for entry_generation, entry_keys, entry_rels, entry_structural
            in self._entries
            if entry_generation > generation
        ]

    def dirty_since(self, generation: int) -> MutationDelta:
        """Fold every entry after ``generation`` into one delta.

        A baseline at the current generation yields an empty delta; one
        before the retention horizon (or negative, the engine's "never
        synced" sentinel) yields :data:`FULL_DELTA`.
        """
        if generation >= self.generation:
            return MutationDelta()
        if generation < self._horizon:
            return FULL_DELTA
        key_types = set()
        rel_types = set()
        structural = False
        for entry_generation, entry_keys, entry_rels, entry_structural in reversed(
            self._entries
        ):
            if entry_generation <= generation:
                break
            key_types.update(entry_keys)
            rel_types.update(entry_rels)
            structural = structural or entry_structural
        return MutationDelta(
            key_types=frozenset(key_types),
            rel_types=frozenset(rel_types),
            structural=structural,
        )

    def __len__(self) -> int:
        return len(self._entries)
