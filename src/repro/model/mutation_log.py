"""The per-generation mutation changelog of an entity graph.

The paper's discovery pipeline assumes a static graph; the ROADMAP's live
workloads do not.  Incremental maintenance needs more than a *count* of
mutations (the seed's ``generation`` integer): every consumer downstream
— scoring contexts, candidate pools, engine memos, worker snapshots —
wants to know *which* key types and relationship types a batch of
mutations touched, so it can patch in O(delta) instead of rebuilding in
O(graph).

:class:`MutationLog` records one entry per mutation, each tagged with the
generation it produced, the entity (key) types whose aggregates it
dirtied, the relationship types it touched, and whether it was
*structural*:

* **non-structural** — an entity of an already-known type, or a
  relationship instance of an already-known relationship type.  Schema
  vertices/edges, candidate-list membership ``Γτ``, type distances and
  eligibility are all unchanged; only the *scores* of the dirty types
  move.  This is the delta-patchable case.
* **structural** — a brand-new entity type or relationship type.  The
  schema graph itself changes (new vertex/edge), so distance oracles,
  clique enumerations and candidate lists may all shift: consumers must
  rebuild from scratch.

:meth:`MutationLog.dirty_since` folds every entry after a baseline
generation into one :class:`MutationDelta`.  The log retains a bounded
window (:attr:`MutationLog.max_entries`); a baseline older than the
window answers with ``full=True``, which consumers treat like a
structural change (full rebuild) — correct, merely less incremental.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, FrozenSet, Iterable, Tuple

from .ids import RelationshipTypeId, TypeId

#: Default bound on retained entries; beyond it the oldest entries are
#: compacted into the "before the horizon" answer (``full=True``).
DEFAULT_MAX_ENTRIES = 4096


@dataclass(frozen=True)
class MutationDelta:
    """The union of every mutation between two generations.

    ``key_types`` are the entity types whose key/non-key scores may have
    changed; ``rel_types`` the relationship types whose instance counts
    moved.  ``structural`` means the schema graph gained a vertex or
    edge; ``full`` means the baseline predates the log's retention
    window (or the log never saw it) — both demand a full rebuild.
    """

    key_types: FrozenSet[TypeId] = frozenset()
    rel_types: FrozenSet[RelationshipTypeId] = frozenset()
    structural: bool = False
    full: bool = False

    @property
    def empty(self) -> bool:
        """True when nothing at all was dirtied (pure no-op mutations)."""
        return not (self.key_types or self.rel_types or self.structural or self.full)

    @property
    def patchable(self) -> bool:
        """True when O(delta) patching is sound (no schema change)."""
        return not (self.structural or self.full)


#: The "rebuild everything" answer for unknown/ancient baselines.
FULL_DELTA = MutationDelta(full=True)

#: One retained log entry: (generation, key_types, rel_types, structural).
_Entry = Tuple[int, Tuple[TypeId, ...], Tuple[RelationshipTypeId, ...], bool]


@dataclass
class MutationLog:
    """Append-only changelog, one entry per entity-graph mutation."""

    max_entries: int = DEFAULT_MAX_ENTRIES
    #: The generation produced by the latest mutation (0 = pristine).
    generation: int = 0
    _entries: Deque[_Entry] = field(default_factory=deque)
    #: Highest generation already compacted away; baselines below it can
    #: only be answered with :data:`FULL_DELTA`.
    _horizon: int = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(
        self,
        key_types: Iterable[TypeId] = (),
        rel_types: Iterable[RelationshipTypeId] = (),
        structural: bool = False,
    ) -> int:
        """Append one mutation entry; returns the new generation."""
        self.generation += 1
        self._entries.append(
            (self.generation, tuple(key_types), tuple(rel_types), structural)
        )
        if len(self._entries) > self.max_entries:
            oldest = self._entries.popleft()
            self._horizon = oldest[0]
        return self.generation

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def dirty_since(self, generation: int) -> MutationDelta:
        """Fold every entry after ``generation`` into one delta.

        A baseline at the current generation yields an empty delta; one
        before the retention horizon (or negative, the engine's "never
        synced" sentinel) yields :data:`FULL_DELTA`.
        """
        if generation >= self.generation:
            return MutationDelta()
        if generation < self._horizon:
            return FULL_DELTA
        key_types = set()
        rel_types = set()
        structural = False
        for entry_generation, entry_keys, entry_rels, entry_structural in reversed(
            self._entries
        ):
            if entry_generation <= generation:
                break
            key_types.update(entry_keys)
            rel_types.update(entry_rels)
            structural = structural or entry_structural
        return MutationDelta(
            key_types=frozenset(key_types),
            rel_types=frozenset(rel_types),
            structural=structural,
        )

    def __len__(self) -> int:
        return len(self._entries)
