"""Entity-graph data model: entities, types, relationships, schema graphs."""

from .attributes import Direction, NonKeyAttribute, incoming, outgoing
from .builder import EntityGraphBuilder
from .entity_graph import EntityGraph
from .ids import (
    EntityId,
    RelationshipTypeId,
    TypeId,
    parse_qualified_name,
    qualified_name,
)
from .mutation_log import FULL_DELTA, MutationDelta, MutationLog
from .schema_graph import SchemaGraph
from .triples import (
    TYPE_PREDICATE,
    Triple,
    entity_graph_to_triples,
    triples_to_entity_graph,
    validate_round_trip,
)

__all__ = [
    "Direction",
    "EntityGraph",
    "EntityGraphBuilder",
    "EntityId",
    "FULL_DELTA",
    "MutationDelta",
    "MutationLog",
    "NonKeyAttribute",
    "RelationshipTypeId",
    "SchemaGraph",
    "TYPE_PREDICATE",
    "Triple",
    "TypeId",
    "entity_graph_to_triples",
    "incoming",
    "outgoing",
    "parse_qualified_name",
    "qualified_name",
    "triples_to_entity_graph",
    "validate_round_trip",
]
