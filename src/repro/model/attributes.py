"""Non-key attribute value objects.

A non-key attribute of a preview table with key attribute ``τ`` is a
relationship type incident on ``τ`` **in either direction** (Definition 1:
"a non-key attribute corresponds to either γ(τ, τ') or γ(τ', τ)").  The
same relationship type therefore yields *two* candidate attributes when it
is a self-loop on ``τ``, and one candidate each for its source-type table
and its target-type table otherwise — which is why the paper counts
``N = 2|Es|`` candidates overall (Sec. 5.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .ids import RelationshipTypeId, TypeId


class Direction(enum.Enum):
    """Orientation of a relationship type relative to a table's key type."""

    #: The key type is the *source* of the relationship: γ(τ, τ').
    OUT = "out"
    #: The key type is the *target* of the relationship: γ(τ', τ).
    IN = "in"

    def flipped(self) -> "Direction":
        """The opposite direction."""
        return Direction.IN if self is Direction.OUT else Direction.OUT


@dataclass(frozen=True, order=True)
class NonKeyAttribute:
    """A candidate non-key attribute: a relationship type plus orientation."""

    rel_type: RelationshipTypeId
    direction: Direction

    @property
    def name(self) -> str:
        """Name of the underlying relationship type."""
        return self.rel_type.name

    def key_type(self) -> TypeId:
        """The entity type of the table this attribute belongs to."""
        if self.direction is Direction.OUT:
            return self.rel_type.source_type
        return self.rel_type.target_type

    def target_type(self) -> TypeId:
        """The entity type on the far end (the attribute's value type)."""
        if self.direction is Direction.OUT:
            return self.rel_type.target_type
        return self.rel_type.source_type

    def __str__(self) -> str:
        arrow = "->" if self.direction is Direction.OUT else "<-"
        return f"{self.rel_type.name} {arrow} {self.target_type()}"


def outgoing(rel_type: RelationshipTypeId) -> NonKeyAttribute:
    """The attribute view of ``rel_type`` for its source-type table."""
    return NonKeyAttribute(rel_type, Direction.OUT)


def incoming(rel_type: RelationshipTypeId) -> NonKeyAttribute:
    """The attribute view of ``rel_type`` for its target-type table."""
    return NonKeyAttribute(rel_type, Direction.IN)
