"""The entity graph ``Gd(Vd, Ed)`` — the paper's input data model (Sec. 2).

An entity graph is a directed multigraph whose vertices are *entities*
(each belonging to one or more *entity types*) and whose edges are
*relationships* (each belonging to exactly one *relationship type*).  The
type of a relationship determines the types of both endpoints, so every
edge is labelled with a full :class:`~repro.model.ids.RelationshipTypeId`.

The class maintains the aggregate statistics the scoring measures consume:

* per-type entity counts  — coverage key scoring ``Scov(τ)``;
* per-relationship-type edge counts — coverage non-key scoring;
* per-type-pair edge totals — random-walk edge weights ``w_ij``;
* per-entity typed adjacency — entropy scoring and tuple materialization.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, FrozenSet, Iterable, Iterator, List, Set, Tuple

from ..exceptions import (
    SchemaViolationError,
    UnknownEntityError,
    UnknownRelationshipTypeError,
    UnknownTypeError,
)
from ..graph import DirectedMultigraph
from .attributes import Direction, NonKeyAttribute
from .ids import EntityId, RelationshipTypeId, TypeId
from .mutation_log import MutationLog


class EntityGraph:
    """A typed directed multigraph of entities and relationships.

    Instances are usually constructed through
    :class:`~repro.model.builder.EntityGraphBuilder` or loaded from a
    :class:`~repro.store.triple_store.TripleStore`, but the mutation API
    here is public and validating.

    Every successful mutation is recorded in :attr:`mutation_log` — the
    per-generation changelog of dirty key types and relationship types
    that the incremental scoring pipeline (contexts, candidate pools,
    engine memos) consumes to patch itself in O(delta); see
    :mod:`repro.model.mutation_log`.
    """

    def __init__(self, name: str = "entity-graph") -> None:
        self.name = name
        self._graph = DirectedMultigraph()
        self._types_of: Dict[EntityId, Set[TypeId]] = {}
        self._entities_by_type: Dict[TypeId, Set[EntityId]] = {}
        self._edge_counts: Counter = Counter()  # RelationshipTypeId -> count
        # (entity, rel_type) -> multiset of neighbor entities, per direction.
        self._out: Dict[Tuple[EntityId, RelationshipTypeId], List[EntityId]] = {}
        self._in: Dict[Tuple[EntityId, RelationshipTypeId], List[EntityId]] = {}
        #: Per-generation changelog of what each mutation dirtied.
        self.mutation_log = MutationLog()

    @property
    def generation(self) -> int:
        """Total successful mutations — the cache-invalidation epoch."""
        return self.mutation_log.generation

    # ------------------------------------------------------------------
    # Entities and types
    # ------------------------------------------------------------------
    def add_entity(self, entity: EntityId, types: Iterable[TypeId]) -> None:
        """Add an entity with one or more types (idempotent, types union)."""
        type_list = list(dict.fromkeys(types))
        if not type_list:
            raise SchemaViolationError(
                f"entity {entity!r} must belong to at least one type"
            )
        self._graph.add_node(entity)
        existing = self._types_of.setdefault(entity, set())
        # First-seen order is the caller's list order (deterministic
        # across processes, unlike set iteration) — the schema graph,
        # candidate pool and verification rescans all rely on it.
        new_types = [t for t in type_list if t not in existing]
        # A type first seen here adds a schema-graph vertex: structural.
        structural = any(
            type_name not in self._entities_by_type for type_name in new_types
        )
        for type_name in new_types:
            existing.add(type_name)
            self._entities_by_type.setdefault(type_name, set()).add(entity)
        self.mutation_log.record(key_types=new_types, structural=structural)

    def has_entity(self, entity: EntityId) -> bool:
        """Whether ``entity`` exists in the graph."""
        return entity in self._types_of

    def types_of(self, entity: EntityId) -> FrozenSet[TypeId]:
        """The set of types ``entity`` belongs to."""
        try:
            return frozenset(self._types_of[entity])
        except KeyError:
            raise UnknownEntityError(entity) from None

    def entities(self) -> Iterator[EntityId]:
        """Iterator over entity ids in insertion order."""
        return iter(self._types_of)

    def entity_types(self) -> List[TypeId]:
        """All entity types, in first-seen order."""
        return list(self._entities_by_type)

    def entities_of_type(self, type_name: TypeId) -> FrozenSet[EntityId]:
        """``T.τ`` — the set of entities bearing ``type_name``."""
        try:
            return frozenset(self._entities_by_type[type_name])
        except KeyError:
            raise UnknownTypeError(type_name) from None

    def type_count(self, type_name: TypeId) -> int:
        """``|{v : v has type τ}|`` — the coverage score numerator."""
        try:
            return len(self._entities_by_type[type_name])
        except KeyError:
            raise UnknownTypeError(type_name) from None

    @property
    def entity_count(self) -> int:
        """Number of entities."""
        return len(self._types_of)

    # ------------------------------------------------------------------
    # Relationships
    # ------------------------------------------------------------------
    def add_relationship(
        self,
        source: EntityId,
        target: EntityId,
        rel_type: RelationshipTypeId,
    ) -> None:
        """Add a directed relationship of type ``rel_type``.

        Validates the paper's schema invariant: the source entity must bear
        ``rel_type.source_type`` and the target entity must bear
        ``rel_type.target_type``.
        """
        if source not in self._types_of:
            raise UnknownEntityError(source)
        if target not in self._types_of:
            raise UnknownEntityError(target)
        if rel_type.source_type not in self._types_of[source]:
            raise SchemaViolationError(
                f"source {source!r} lacks type {rel_type.source_type!r} "
                f"required by relationship type {rel_type}"
            )
        if rel_type.target_type not in self._types_of[target]:
            raise SchemaViolationError(
                f"target {target!r} lacks type {rel_type.target_type!r} "
                f"required by relationship type {rel_type}"
            )
        # A relationship type first seen here adds a schema-graph edge
        # (and possibly new candidate attributes): structural.
        structural = rel_type not in self._edge_counts
        self._graph.add_edge(source, target, rel_type)
        self._edge_counts[rel_type] += 1
        self._out.setdefault((source, rel_type), []).append(target)
        self._in.setdefault((target, rel_type), []).append(source)
        # Instance counts feed the non-key scores of both endpoint types
        # (γ appears in Γ_src as OUT and in Γ_tgt as IN): they are the
        # key types this mutation dirties.
        self.mutation_log.record(
            key_types=(rel_type.source_type, rel_type.target_type),
            rel_types=(rel_type,),
            structural=structural,
        )

    def relationship_types(self) -> List[RelationshipTypeId]:
        """All relationship types with at least one edge, first-seen order."""
        return list(self._edge_counts)

    def relationship_count(self, rel_type: RelationshipTypeId) -> int:
        """``|{e : e has type γ}|`` — the non-key coverage score."""
        if rel_type not in self._edge_counts:
            raise UnknownRelationshipTypeError(rel_type)
        return self._edge_counts[rel_type]

    @property
    def edge_count(self) -> int:
        """Number of relationship edges."""
        return self._graph.edge_count

    def relationships(self) -> Iterator[Tuple[EntityId, EntityId, RelationshipTypeId]]:
        """Yield every relationship instance as ``(source, target, type)``."""
        for source, target, _key, label in self._graph.edges():
            yield source, target, label

    # ------------------------------------------------------------------
    # Typed adjacency (materialization + entropy scoring)
    # ------------------------------------------------------------------
    def targets(self, entity: EntityId, rel_type: RelationshipTypeId) -> List[EntityId]:
        """Entities reached from ``entity`` via outgoing ``rel_type`` edges."""
        if entity not in self._types_of:
            raise UnknownEntityError(entity)
        return list(self._out.get((entity, rel_type), ()))

    def sources(self, entity: EntityId, rel_type: RelationshipTypeId) -> List[EntityId]:
        """Entities reaching ``entity`` via incoming ``rel_type`` edges."""
        if entity not in self._types_of:
            raise UnknownEntityError(entity)
        return list(self._in.get((entity, rel_type), ()))

    def attribute_value(
        self, entity: EntityId, attribute: NonKeyAttribute
    ) -> FrozenSet[EntityId]:
        """``t.γ`` — the (set-valued) value of ``entity`` on ``attribute``.

        Definition 1: the set of entities incident from (OUT) or to (IN)
        the tuple's key entity through edges of the attribute's type.
        """
        if attribute.direction is Direction.OUT:
            return frozenset(self.targets(entity, attribute.rel_type))
        return frozenset(self.sources(entity, attribute.rel_type))

    # ------------------------------------------------------------------
    # Aggregates for scoring
    # ------------------------------------------------------------------
    def type_pair_weights(self) -> Dict[Tuple[TypeId, TypeId], int]:
        """``w_ij`` — total relationships between each unordered type pair.

        Keys are unordered pairs normalized with ``sorted``; self-pairs
        (τ, τ) accumulate self-loop relationship types.
        """
        weights: Counter = Counter()
        for rel_type, count in self._edge_counts.items():
            pair = tuple(sorted((rel_type.source_type, rel_type.target_type)))
            weights[pair] += count
        return dict(weights)

    def stats(self) -> Dict[str, int]:
        """Summary statistics in the shape of the paper's Table 2 rows."""
        return {
            "entities": self.entity_count,
            "relationships": self.edge_count,
            "entity_types": len(self._entities_by_type),
            "relationship_types": len(self._edge_counts),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stats = self.stats()
        return (
            f"EntityGraph(name={self.name!r}, entities={stats['entities']}, "
            f"relationships={stats['relationships']}, "
            f"types={stats['entity_types']}, "
            f"rel_types={stats['relationship_types']})"
        )
