"""The schema graph ``Gs(Vs, Es)`` derived from an entity graph (Sec. 2).

Vertices are entity types; edges are relationship types.  Given an entity
graph the schema graph is *uniquely determined*: ``γ(τ, τ') ∈ Es`` iff the
entity graph contains at least one edge of type γ between entities of
types τ and τ'.  Because every relationship instance carries a full
:class:`~repro.model.ids.RelationshipTypeId`, derivation is a single scan
over the relationship-type table.

The schema graph also carries the aggregates preview discovery needs:

* candidate non-key attribute lists ``Γτ`` per entity type (both edge
  orientations, per Definition 1);
* the undirected weighted type graph for the random-walk scorer;
* a :class:`~repro.graph.distance.DistanceOracle` for tight/diverse
  constraints.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..exceptions import UnknownTypeError
from ..graph import DirectedMultigraph, DistanceOracle, UndirectedGraph
from .attributes import Direction, NonKeyAttribute
from .entity_graph import EntityGraph
from .ids import RelationshipTypeId, TypeId


class SchemaGraph:
    """Schema graph with cached scoring aggregates.

    Build with :meth:`from_entity_graph`; direct construction is exposed
    for tests and for synthetic schema-only workloads (e.g. the NP-hardness
    reductions, which construct schema graphs with no entity graph
    underneath).
    """

    def __init__(self, name: str = "schema-graph") -> None:
        self.name = name
        self._graph = DirectedMultigraph()
        self._rel_weights: Dict[RelationshipTypeId, int] = {}
        self._type_counts: Dict[TypeId, int] = {}
        self._candidates: Dict[TypeId, List[NonKeyAttribute]] = {}
        self._distance_oracle: Optional[DistanceOracle] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_entity_graph(cls, entity_graph: EntityGraph) -> "SchemaGraph":
        """Derive the (unique) schema graph of ``entity_graph``."""
        schema = cls(name=f"schema({entity_graph.name})")
        for type_name in entity_graph.entity_types():
            schema.add_entity_type(
                type_name, entity_count=entity_graph.type_count(type_name)
            )
        for rel_type in entity_graph.relationship_types():
            schema.add_relationship_type(
                rel_type, edge_count=entity_graph.relationship_count(rel_type)
            )
        return schema

    def add_entity_type(self, type_name: TypeId, entity_count: int = 0) -> None:
        """Register an entity type vertex with its entity population."""
        self._graph.add_node(type_name)
        self._type_counts.setdefault(type_name, 0)
        self._type_counts[type_name] = max(self._type_counts[type_name], entity_count)
        self._candidates.setdefault(type_name, [])
        self._distance_oracle = None

    def add_relationship_type(
        self, rel_type: RelationshipTypeId, edge_count: int = 1
    ) -> None:
        """Register a relationship type edge with its instance count.

        Endpoint types are added implicitly (with zero population) when
        missing, mirroring multigraph conventions.
        """
        self.add_entity_type(rel_type.source_type)
        self.add_entity_type(rel_type.target_type)
        if rel_type in self._rel_weights:
            self._rel_weights[rel_type] += edge_count
        else:
            self._rel_weights[rel_type] = edge_count
            self._graph.add_edge(
                rel_type.source_type, rel_type.target_type, rel_type
            )
            self._candidates[rel_type.source_type].append(
                NonKeyAttribute(rel_type, Direction.OUT)
            )
            self._candidates[rel_type.target_type].append(
                NonKeyAttribute(rel_type, Direction.IN)
            )
        self._distance_oracle = None

    # ------------------------------------------------------------------
    # Vertices / edges
    # ------------------------------------------------------------------
    def entity_types(self) -> List[TypeId]:
        """All entity types, in insertion order."""
        return list(self._graph.nodes())

    def has_entity_type(self, type_name: TypeId) -> bool:
        """Whether ``type_name`` is declared."""
        return self._graph.has_node(type_name)

    @property
    def entity_type_count(self) -> int:
        """``K = |Vs|`` in the paper's complexity analyses."""
        return self._graph.node_count

    def relationship_types(self) -> List[RelationshipTypeId]:
        """All relationship types, in insertion order."""
        return list(self._rel_weights)

    @property
    def relationship_type_count(self) -> int:
        """``|Es|`` — number of relationship types."""
        return len(self._rel_weights)

    @property
    def candidate_attribute_count(self) -> int:
        """``N = 2|Es|`` — total candidate non-key attributes (Sec. 5.1)."""
        return 2 * len(self._rel_weights)

    def entity_count(self, type_name: TypeId) -> int:
        """Number of entities of ``type_name`` in the underlying data."""
        try:
            return self._type_counts[type_name]
        except KeyError:
            raise UnknownTypeError(type_name) from None

    def relationship_count(self, rel_type: RelationshipTypeId) -> int:
        """Number of relationship instances of ``rel_type``."""
        if rel_type not in self._rel_weights:
            from ..exceptions import UnknownRelationshipTypeError

            raise UnknownRelationshipTypeError(rel_type)
        return self._rel_weights[rel_type]

    # ------------------------------------------------------------------
    # Candidate non-key attributes
    # ------------------------------------------------------------------
    def candidate_attributes(self, type_name: TypeId) -> List[NonKeyAttribute]:
        """``Γτ`` — candidate non-key attributes incident on ``type_name``.

        Contains one OUT view per relationship type sourced at ``τ`` and
        one IN view per relationship type targeting ``τ``; a self-loop
        contributes both views.
        """
        try:
            return list(self._candidates[type_name])
        except KeyError:
            raise UnknownTypeError(type_name) from None

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def multigraph(self) -> DirectedMultigraph:
        """The raw directed multigraph view (vertices=types, edges=rel types)."""
        return self._graph

    def undirected_weighted(self) -> UndirectedGraph:
        """The weighted undirected type graph of Sec. 3.2.

        Edge weight ``w_ij`` is the total number of entity-graph
        relationships between types ``τi`` and ``τj`` in both directions.
        Every registered entity type appears as a node even if isolated.
        """
        graph = UndirectedGraph()
        for type_name in self._graph.nodes():
            graph.add_node(type_name)
        for rel_type, weight in self._rel_weights.items():
            graph.add_edge(rel_type.source_type, rel_type.target_type, float(weight))
        return graph

    def distance_oracle(self) -> DistanceOracle:
        """Cached all-pairs undirected distances between entity types."""
        if self._distance_oracle is None:
            self._distance_oracle = DistanceOracle(self._graph)
        return self._distance_oracle

    def distance(self, type_a: TypeId, type_b: TypeId) -> float:
        """``dist(τ, τ')`` — shortest undirected path length (Sec. 4)."""
        return self.distance_oracle().distance(type_a, type_b)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def edges(self) -> Iterator[Tuple[TypeId, TypeId, RelationshipTypeId]]:
        """Iterator of ``(source, target, relationship type)`` triples."""
        for source, target, _key, label in self._graph.edges():
            yield source, target, label

    def stats(self) -> Dict[str, int]:
        """Count summary of declared types and relationships."""
        return {
            "entity_types": self.entity_type_count,
            "relationship_types": self.relationship_type_count,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SchemaGraph(name={self.name!r}, "
            f"types={self.entity_type_count}, "
            f"rel_types={self.relationship_type_count})"
        )
