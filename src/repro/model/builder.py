"""Incremental, validating builder for entity graphs.

The builder offers a forgiving front-end over
:class:`~repro.model.entity_graph.EntityGraph`: entities may be declared
lazily, relationship types are interned from surface names plus endpoint
types, and relationships referencing undeclared entities raise eagerly
with a precise error.  It is the recommended way to assemble graphs by
hand (see ``examples/quickstart.py``).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from ..exceptions import SchemaViolationError, UnknownEntityError
from .entity_graph import EntityGraph
from .ids import EntityId, RelationshipTypeId, TypeId


class EntityGraphBuilder:
    """Fluent builder for :class:`EntityGraph`.

    Example
    -------
    >>> builder = EntityGraphBuilder("tiny-film")
    >>> builder.entity("Men in Black", "FILM")
    ... # doctest: +ELLIPSIS
    <repro.model.builder.EntityGraphBuilder object at ...>
    >>> builder.entity("Will Smith", "FILM ACTOR")  # doctest: +ELLIPSIS
    <repro.model.builder.EntityGraphBuilder object at ...>
    >>> _ = builder.relate("Will Smith", "Actor", "Men in Black",
    ...                    source_type="FILM ACTOR", target_type="FILM")
    >>> graph = builder.build()
    >>> graph.entity_count
    2
    """

    def __init__(self, name: str = "entity-graph") -> None:
        self._graph = EntityGraph(name=name)
        self._rel_type_cache: Dict[Tuple[str, TypeId, TypeId], RelationshipTypeId] = {}

    def entity(self, entity: EntityId, *types: TypeId) -> "EntityGraphBuilder":
        """Declare an entity with one or more types; chainable."""
        if not types:
            raise SchemaViolationError(
                f"entity {entity!r} must be declared with at least one type"
            )
        self._graph.add_entity(entity, types)
        return self

    def entities(
        self, pairs: Iterable[Tuple[EntityId, Iterable[TypeId]]]
    ) -> "EntityGraphBuilder":
        """Declare many entities at once from ``(entity, types)`` pairs."""
        for entity, types in pairs:
            self._graph.add_entity(entity, types)
        return self

    def relate(
        self,
        source: EntityId,
        name: str,
        target: EntityId,
        source_type: Optional[TypeId] = None,
        target_type: Optional[TypeId] = None,
    ) -> RelationshipTypeId:
        """Add a relationship, inferring endpoint types when unambiguous.

        When ``source_type``/``target_type`` are omitted, the builder uses
        the entity's unique type; entities with multiple types require the
        caller to disambiguate (the paper's model pins a relationship
        type's endpoint types, so ambiguity must be resolved explicitly).
        Returns the interned :class:`RelationshipTypeId`.
        """
        source_type = self._resolve_type(source, source_type, role="source")
        target_type = self._resolve_type(target, target_type, role="target")
        cache_key = (name, source_type, target_type)
        rel_type = self._rel_type_cache.get(cache_key)
        if rel_type is None:
            rel_type = RelationshipTypeId(
                name=name, source_type=source_type, target_type=target_type
            )
            self._rel_type_cache[cache_key] = rel_type
        self._graph.add_relationship(source, target, rel_type)
        return rel_type

    def relate_many(
        self,
        triples: Iterable[Tuple[EntityId, str, EntityId]],
        source_type: Optional[TypeId] = None,
        target_type: Optional[TypeId] = None,
    ) -> "EntityGraphBuilder":
        """Add many same-shaped relationships; chainable."""
        for source, name, target in triples:
            self.relate(
                source, name, target, source_type=source_type, target_type=target_type
            )
        return self

    def build(self) -> EntityGraph:
        """Return the built graph.  The builder remains usable afterwards."""
        return self._graph

    # ------------------------------------------------------------------
    def _resolve_type(
        self, entity: EntityId, declared: Optional[TypeId], role: str
    ) -> TypeId:
        if not self._graph.has_entity(entity):
            raise UnknownEntityError(entity)
        types = self._graph.types_of(entity)
        if declared is not None:
            if declared not in types:
                raise SchemaViolationError(
                    f"{role} entity {entity!r} does not bear type {declared!r} "
                    f"(it has {sorted(types)})"
                )
            return declared
        if len(types) == 1:
            return next(iter(types))
        raise SchemaViolationError(
            f"{role} entity {entity!r} has multiple types {sorted(types)}; "
            f"pass {role}_type= to disambiguate"
        )
