"""Benchmark harness utilities: timing, table formatting, result files."""

from .results import append_result, results_dir, write_result
from .runner import DEFAULT_RUNS, Timing, speedup, time_callable
from .tables import format_series, format_table

__all__ = [
    "DEFAULT_RUNS",
    "Timing",
    "append_result",
    "format_series",
    "format_table",
    "results_dir",
    "speedup",
    "time_callable",
    "write_result",
]
