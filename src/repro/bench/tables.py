"""ASCII table formatting for experiment results files."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render rows as a padded ASCII table with an optional title."""
    text_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(separator)
    for row in text_rows:
        padded = [cell.ljust(widths[i]) for i, cell in enumerate(row)]
        lines.append(" | ".join(padded))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_series(
    label: str, xs: Sequence[object], ys: Sequence[float], precision: int = 3
) -> str:
    """Render one figure series as ``label: x=y`` pairs on one line."""
    pairs = " ".join(f"{x}={y:.{precision}f}" for x, y in zip(xs, ys))
    return f"{label}: {pairs}"
