"""Results-directory management for the benchmark harness.

Every bench writes a deterministic text artifact under ``results/`` so
EXPERIMENTS.md can reference stable files, and CI diffs catch behavioural
regressions in the reproduced tables/figures.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

from .. import config

PathLike = Union[str, os.PathLike]

#: Environment variable overriding the results directory (declared in
#: :mod:`repro.config`).
RESULTS_ENV = config.RESULTS_DIR.name


def results_dir() -> Path:
    """The directory experiment artifacts are written to.

    Defaults to ``<repo>/results`` (two levels above this package when it
    is an editable install) or ``./results`` otherwise; always created.
    """
    override = config.results_dir_override()
    if override:
        path = Path(override)
    else:
        here = Path(__file__).resolve()
        repo_root = here.parents[3] if len(here.parents) >= 4 else Path.cwd()
        candidate = repo_root / "results"
        path = candidate if repo_root.name != "site-packages" else Path.cwd() / "results"
    path.mkdir(parents=True, exist_ok=True)
    return path


def write_result(name: str, content: str) -> Path:
    """Write one experiment artifact; returns its path."""
    path = results_dir() / name
    path.write_text(content.rstrip() + "\n", encoding="utf-8")
    return path


def append_result(name: str, content: str) -> Path:
    """Append one block to an experiment artifact; returns its path."""
    path = results_dir() / name
    with path.open("a", encoding="utf-8") as handle:
        handle.write(content.rstrip() + "\n")
    return path
