"""Timing helpers for the efficiency experiments (Figs. 8 and 9)."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

#: The paper averages execution time across 3 runs and floors at 1 ms.
DEFAULT_RUNS = 3
FLOOR_MS = 1.0


@dataclass(frozen=True)
class Timing:
    """Average wall-clock time of a callable across runs."""

    label: str
    milliseconds: float
    runs: int

    def __str__(self) -> str:
        return f"{self.label}: {self.milliseconds:.3f} ms (avg of {self.runs})"


def time_callable(
    fn: Callable[[], object],
    label: str = "",
    runs: int = DEFAULT_RUNS,
    floor_ms: float = FLOOR_MS,
) -> Timing:
    """Average wall-clock milliseconds of ``fn`` across ``runs`` calls.

    Matches the paper's methodology: 3-run average, times below 1 ms
    reported as 1 ms.
    """
    total = 0.0
    for _ in range(runs):
        start = time.perf_counter()
        fn()
        total += time.perf_counter() - start
    ms = (total / runs) * 1000.0
    return Timing(label=label, milliseconds=max(floor_ms, ms), runs=runs)


def speedup(baseline: Timing, improved: Timing) -> float:
    """Baseline-over-improved time ratio (>1 = improvement)."""
    if improved.milliseconds <= 0:
        return float("inf")
    return baseline.milliseconds / improved.milliseconds
