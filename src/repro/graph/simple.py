"""A simple undirected graph with optional edge weights.

Used by:

* the random-walk scoring measure (Sec. 3.2), which walks an *undirected*
  weighted graph derived from the schema graph;
* the distance oracle (shortest undirected path between entity types);
* the clique-enumeration step of the Apriori-style algorithm (Alg. 3),
  which operates on a distance-threshold graph.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Set, Tuple

from ..exceptions import NodeNotFoundError

Node = Hashable


class UndirectedGraph:
    """An undirected simple graph with float edge weights.

    Adding an edge that already exists accumulates its weight, which is the
    behaviour needed when folding a directed multigraph: the paper defines
    ``w_ij`` as the *total* number of entity-graph relationships between the
    two types, summed over both directions.
    """

    def __init__(self) -> None:
        self._adj: Dict[Node, Dict[Node, float]] = {}

    def add_node(self, node: Node) -> None:
        """Add ``node`` (idempotent)."""
        self._adj.setdefault(node, {})

    def has_node(self, node: Node) -> bool:
        """Whether ``node`` is in the graph."""
        return node in self._adj

    def nodes(self) -> Iterator[Node]:
        """Iterator over nodes in insertion order."""
        return iter(self._adj)

    @property
    def node_count(self) -> int:
        """Number of nodes."""
        return len(self._adj)

    def add_edge(self, u: Node, v: Node, weight: float = 1.0) -> None:
        """Add (or reinforce) the undirected edge ``{u, v}``.

        Self-loops are permitted; a self-loop's weight is stored once.
        """
        self.add_node(u)
        self.add_node(v)
        self._adj[u][v] = self._adj[u].get(v, 0.0) + weight
        if u != v:
            self._adj[v][u] = self._adj[v].get(u, 0.0) + weight

    def has_edge(self, u: Node, v: Node) -> bool:
        """Whether edge ``u``-``v`` exists."""
        return u in self._adj and v in self._adj[u]

    def weight(self, u: Node, v: Node) -> float:
        """Return the weight of edge ``{u, v}``; 0.0 if absent."""
        if u not in self._adj:
            raise NodeNotFoundError(u)
        if v not in self._adj:
            raise NodeNotFoundError(v)
        return self._adj[u].get(v, 0.0)

    @property
    def edge_count(self) -> int:
        """Number of undirected edges (self-loops counted once)."""
        loops = sum(1 for node in self._adj if node in self._adj[node])
        non_loops = sum(len(nbrs) for nbrs in self._adj.values()) - loops
        return non_loops // 2 + loops

    def edges(self) -> Iterator[Tuple[Node, Node, float]]:
        """Yield each undirected edge once as ``(u, v, weight)``."""
        emitted: Set[Tuple[Node, Node]] = set()
        for u, nbrs in self._adj.items():
            for v, weight in nbrs.items():
                key = (u, v) if id(u) <= id(v) else (v, u)
                if (u, v) in emitted or (v, u) in emitted:
                    continue
                emitted.add(key)
                emitted.add((u, v))
                yield u, v, weight

    def neighbors(self, node: Node) -> Iterator[Node]:
        """Iterator over neighbors of ``node``, in insertion order."""
        if node not in self._adj:
            raise NodeNotFoundError(node)
        return iter(self._adj[node])

    def degree(self, node: Node) -> int:
        """Number of edges incident to ``node``."""
        if node not in self._adj:
            raise NodeNotFoundError(node)
        return len(self._adj[node])

    def weighted_degree(self, node: Node) -> float:
        """Sum of incident edge weights (the random-walk normalizer)."""
        if node not in self._adj:
            raise NodeNotFoundError(node)
        return sum(self._adj[node].values())

    def subgraph(self, nodes: Iterable[Node]) -> "UndirectedGraph":
        """Induced subgraph on ``nodes`` (unknown names ignored)."""
        keep = {node for node in nodes if node in self._adj}
        sub = UndirectedGraph()
        for node in keep:
            sub.add_node(node)
        for u, v, weight in self.edges():
            if u in keep and v in keep:
                sub.add_edge(u, v, weight)
        return sub

    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(nodes={self.node_count}, "
            f"edges={self.edge_count})"
        )
