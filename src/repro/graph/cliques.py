"""k-clique enumeration backends for the Apriori-style algorithm (Alg. 3).

The first step of the paper's Alg. 3 finds all k-subsets of entity types
that pairwise satisfy the distance constraint — i.e. all k-cliques of a
*threshold graph* whose edges connect types within (tight) or beyond
(diverse) distance ``d``.  The paper builds the cliques with an
Apriori-style level-wise join (inspired by frequent-itemset mining, and by
Kose et al.'s clique-metabolite matrices) and notes that any k-clique
algorithm can be plugged in; it cites Bron–Kerbosch as the classical
alternative.  We provide both backends so the ablation bench can compare
them, mirroring that discussion.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Hashable, List, Sequence, Tuple

from ..exceptions import GraphError

Node = Hashable
#: Adjacency predicate: returns True when two nodes are "compatible"
#: (within/beyond the distance threshold).
AdjacencyFn = Callable[[Node, Node], bool]


def apriori_k_cliques(
    nodes: Sequence[Node],
    adjacent: AdjacencyFn,
    k: int,
) -> List[Tuple[Node, ...]]:
    """All k-cliques via level-wise Apriori-style joins (Alg. 3 lines 1-12).

    ``nodes`` fixes a total order; cliques are returned as sorted tuples in
    that order.  ``k=1`` returns singletons; ``k=0`` returns one empty
    tuple (the vacuous clique), matching the combinatorial convention.

    The join step merges two (i-1)-subsets sharing their first i-2
    elements and checks only the new pair, exactly as the paper's Alg. 3:
    every other pair was already validated in a parent subset.
    """
    if k < 0:
        raise GraphError("k must be non-negative")
    if k == 0:
        return [()]
    index = {node: position for position, node in enumerate(nodes)}
    if len(index) != len(nodes):
        raise GraphError("nodes must be distinct")
    level: List[Tuple[Node, ...]] = [(node,) for node in nodes]
    if k == 1:
        return level

    # L2 seeding (Alg. 3 lines 1-5).
    pairs: List[Tuple[Node, ...]] = []
    for i, u in enumerate(nodes):
        for v in nodes[i + 1:]:
            if adjacent(u, v):
                pairs.append((u, v))
    level = pairs
    size = 2
    while size < k and level:
        nxt: List[Tuple[Node, ...]] = []
        # Group by shared prefix so the join scans only sibling subsets.
        by_prefix: Dict[Tuple[Node, ...], List[Node]] = {}
        for subset in level:
            by_prefix.setdefault(subset[:-1], []).append(subset[-1])
        for prefix, tails in by_prefix.items():
            tails.sort(key=index.__getitem__)
            for i, u in enumerate(tails):
                for v in tails[i + 1:]:
                    if adjacent(u, v):
                        nxt.append(prefix + (u, v))
        level = nxt
        size += 1
    return level if size == k else []


def bron_kerbosch_k_cliques(
    nodes: Sequence[Node],
    adjacent: AdjacencyFn,
    k: int,
) -> List[Tuple[Node, ...]]:
    """All k-cliques extracted via Bron–Kerbosch maximal-clique search.

    Enumerates maximal cliques with pivoting, then emits each k-subset of
    every maximal clique (deduplicated).  This is the classical baseline
    the paper contrasts with the Apriori-style method.
    """
    if k < 0:
        raise GraphError("k must be non-negative")
    if k == 0:
        return [()]
    index = {node: position for position, node in enumerate(nodes)}
    neighbor_sets: Dict[Node, set] = {
        u: {v for v in nodes if v != u and adjacent(u, v)} for u in nodes
    }

    maximal: List[FrozenSet[Node]] = []

    def expand(r: set, p: set, x: set) -> None:
        if not p and not x:
            maximal.append(frozenset(r))
            return
        pivot = max(p | x, key=lambda node: len(neighbor_sets[node] & p))
        for node in list(p - neighbor_sets[pivot]):
            expand(r | {node}, p & neighbor_sets[node], x & neighbor_sets[node])
            p.remove(node)
            x.add(node)

    expand(set(), set(nodes), set())

    from itertools import combinations

    found: set = set()
    for clique in maximal:
        if len(clique) < k:
            continue
        ordered = sorted(clique, key=index.__getitem__)
        for combo in combinations(ordered, k):
            found.add(combo)
    return sorted(found, key=lambda combo: [index[node] for node in combo])


#: Registry used by Alg. 3 to select a clique backend by name.
CLIQUE_BACKENDS: Dict[str, Callable[[Sequence[Node], AdjacencyFn, int], List[Tuple[Node, ...]]]] = {
    "apriori": apriori_k_cliques,
    "bron-kerbosch": bron_kerbosch_k_cliques,
}


def k_cliques(
    nodes: Sequence[Node],
    adjacent: AdjacencyFn,
    k: int,
    backend: str = "apriori",
) -> List[Tuple[Node, ...]]:
    """Dispatch k-clique enumeration to a named backend."""
    try:
        fn = CLIQUE_BACKENDS[backend]
    except KeyError:
        raise GraphError(
            f"unknown clique backend {backend!r}; "
            f"available: {', '.join(sorted(CLIQUE_BACKENDS))}"
        ) from None
    return fn(nodes, adjacent, k)
