"""Connected components on the undirected view of a graph.

Schema graphs may be disconnected (Sec. 6 of the paper notes this when
motivating the random-walk smoothing term), so both the random-walk scorer
and the dataset generators need component analysis.
"""

from __future__ import annotations

from typing import Hashable, List, Set, Union

from .multigraph import DirectedMultigraph
from .simple import UndirectedGraph
from .traversal import bfs_order

Node = Hashable
AnyGraph = Union[DirectedMultigraph, UndirectedGraph]


def connected_components(graph: AnyGraph) -> List[Set[Node]]:
    """Return connected components (undirected view), largest first.

    Ties in size are broken deterministically by insertion order of the
    first node seen in each component.
    """
    seen: Set[Node] = set()
    components: List[Set[Node]] = []
    for node in graph.nodes():
        if node in seen:
            continue
        component = set(bfs_order(graph, node))
        seen |= component
        components.append(component)
    components.sort(key=len, reverse=True)
    return components


def is_connected(graph: AnyGraph) -> bool:
    """True if the graph is non-empty and has a single component."""
    if graph.node_count == 0:
        return False
    return len(connected_components(graph)) == 1


def largest_component(graph: AnyGraph) -> Set[Node]:
    """The node set of the largest component; empty set for empty graphs."""
    components = connected_components(graph)
    if not components:
        return set()
    return components[0]
