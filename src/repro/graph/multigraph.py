"""A directed multigraph with labelled parallel edges.

This is the structural substrate underneath both the entity graph and the
schema graph of the paper.  Both are directed multigraphs: an entity graph
may contain several differently-typed relationships between the same pair
of entities (e.g. *Actor* and *Executive Producer* from ``Will Smith`` to
``I, Robot`` in Fig. 1), and a schema graph may contain several
relationship types between the same pair of entity types.

The implementation is intentionally dependency-free: adjacency is stored
as ``dict[node, dict[node, dict[key, label]]]`` in both directions, which
makes successor/predecessor scans O(out-degree) and edge insertion O(1).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Tuple

from ..exceptions import EdgeNotFoundError, NodeNotFoundError

Node = Hashable
EdgeKey = int
Edge = Tuple[Node, Node, EdgeKey]


class DirectedMultigraph:
    """A directed multigraph with hashable nodes and labelled edges.

    Parallel edges between the same ordered pair of nodes are allowed and
    distinguished by an integer *edge key* assigned at insertion time.
    Each edge carries an arbitrary *label* (the entity graph uses
    relationship-type identifiers, the schema graph uses relationship-type
    names).
    """

    def __init__(self) -> None:
        self._succ: Dict[Node, Dict[Node, Dict[EdgeKey, object]]] = {}
        self._pred: Dict[Node, Dict[Node, Dict[EdgeKey, object]]] = {}
        self._next_key: int = 0
        self._edge_count: int = 0

    # ------------------------------------------------------------------
    # Node operations
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Add ``node`` to the graph; adding an existing node is a no-op."""
        if node not in self._succ:
            self._succ[node] = {}
            self._pred[node] = {}

    def has_node(self, node: Node) -> bool:
        """Whether ``node`` is in the graph."""
        return node in self._succ

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and all incident edges."""
        if node not in self._succ:
            raise NodeNotFoundError(node)
        for target, keyed in list(self._succ[node].items()):
            self._edge_count -= len(keyed)
            del self._pred[target][node]
        for source, keyed in list(self._pred[node].items()):
            if source == node:
                continue  # self-loops were removed with successors
            self._edge_count -= len(keyed)
            del self._succ[source][node]
        del self._succ[node]
        del self._pred[node]

    def nodes(self) -> Iterator[Node]:
        """Iterator over nodes in insertion order."""
        return iter(self._succ)

    @property
    def node_count(self) -> int:
        """Number of nodes."""
        return len(self._succ)

    # ------------------------------------------------------------------
    # Edge operations
    # ------------------------------------------------------------------
    def add_edge(self, source: Node, target: Node, label: object = None) -> EdgeKey:
        """Insert a directed edge and return its unique edge key.

        Endpoints are added implicitly when missing, matching the common
        graph-library convention.
        """
        self.add_node(source)
        self.add_node(target)
        key = self._next_key
        self._next_key += 1
        self._succ[source].setdefault(target, {})[key] = label
        self._pred[target].setdefault(source, {})[key] = label
        self._edge_count += 1
        return key

    def has_edge(self, source: Node, target: Node) -> bool:
        """Return True if at least one edge ``source -> target`` exists."""
        return source in self._succ and target in self._succ[source]

    def remove_edge(self, source: Node, target: Node, key: EdgeKey) -> None:
        """Remove the edge identified by ``(source, target, key)``."""
        try:
            label_map = self._succ[source][target]
            del label_map[key]
        except KeyError:
            raise EdgeNotFoundError(
                f"no edge {source!r} -> {target!r} with key {key}"
            ) from None
        if not label_map:
            del self._succ[source][target]
        pred_map = self._pred[target][source]
        del pred_map[key]
        if not pred_map:
            del self._pred[target][source]
        self._edge_count -= 1

    @property
    def edge_count(self) -> int:
        """Number of edges."""
        return self._edge_count

    def edges(self) -> Iterator[Tuple[Node, Node, EdgeKey, object]]:
        """Yield every edge as ``(source, target, key, label)``."""
        for source, targets in self._succ.items():
            for target, keyed in targets.items():
                for key, label in keyed.items():
                    yield source, target, key, label

    def edges_between(self, source: Node, target: Node) -> List[Tuple[EdgeKey, object]]:
        """Return ``(key, label)`` for all parallel edges ``source -> target``."""
        if source not in self._succ:
            raise NodeNotFoundError(source)
        if target not in self._succ:
            raise NodeNotFoundError(target)
        return list(self._succ[source].get(target, {}).items())

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------
    def successors(self, node: Node) -> Iterator[Node]:
        """Iterator over out-neighbors of ``node``, in insertion order."""
        if node not in self._succ:
            raise NodeNotFoundError(node)
        return iter(self._succ[node])

    def predecessors(self, node: Node) -> Iterator[Node]:
        """Iterator over in-neighbors of ``node``, in insertion order."""
        if node not in self._pred:
            raise NodeNotFoundError(node)
        return iter(self._pred[node])

    def neighbors(self, node: Node) -> Iterator[Node]:
        """Yield distinct neighbors in either direction (undirected view)."""
        if node not in self._succ:
            raise NodeNotFoundError(node)
        seen = set(self._succ[node])
        yield from seen
        for other in self._pred[node]:
            if other not in seen:
                yield other

    def out_edges(self, node: Node) -> Iterator[Tuple[Node, EdgeKey, object]]:
        """Yield ``(target, key, label)`` for edges leaving ``node``."""
        if node not in self._succ:
            raise NodeNotFoundError(node)
        for target, keyed in self._succ[node].items():
            for key, label in keyed.items():
                yield target, key, label

    def in_edges(self, node: Node) -> Iterator[Tuple[Node, EdgeKey, object]]:
        """Yield ``(source, key, label)`` for edges entering ``node``."""
        if node not in self._pred:
            raise NodeNotFoundError(node)
        for source, keyed in self._pred[node].items():
            for key, label in keyed.items():
                yield source, key, label

    def out_degree(self, node: Node) -> int:
        """Number of outgoing edges of ``node``."""
        if node not in self._succ:
            raise NodeNotFoundError(node)
        return sum(len(keyed) for keyed in self._succ[node].values())

    def in_degree(self, node: Node) -> int:
        """Number of incoming edges of ``node``."""
        if node not in self._pred:
            raise NodeNotFoundError(node)
        return sum(len(keyed) for keyed in self._pred[node].values())

    def degree(self, node: Node) -> int:
        """Total incident edge count; self-loops count twice."""
        return self.out_degree(node) + self.in_degree(node)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def copy(self) -> "DirectedMultigraph":
        """Independent copy of the graph structure."""
        clone = DirectedMultigraph()
        for node in self.nodes():
            clone.add_node(node)
        for source, target, _key, label in self.edges():
            clone.add_edge(source, target, label)
        return clone

    def subgraph(self, nodes: Iterable[Node]) -> "DirectedMultigraph":
        """Return the induced subgraph on ``nodes`` (missing nodes ignored)."""
        keep = {node for node in nodes if node in self._succ}
        sub = DirectedMultigraph()
        for node in keep:
            sub.add_node(node)
        for source, target, _key, label in self.edges():
            if source in keep and target in keep:
                sub.add_edge(source, target, label)
        return sub

    def __contains__(self, node: Node) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(nodes={self.node_count}, "
            f"edges={self.edge_count})"
        )
