"""Stationary distributions of random walks over weighted graphs.

This powers the random-walk key-attribute scoring measure (Sec. 3.2).
The paper considers a walker over an undirected weighted graph ``G``
derived from the schema graph, with transition probability

    M_ij = w_ij / sum_k w_ik

and, to guarantee convergence on disconnected schema graphs, adds "a small
transition probability 1e-5 to every pair of entity types" (Sec. 6).  We
implement exactly that additive smoothing followed by row normalization,
then solve ``pi = pi M`` by power iteration.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence

from ..exceptions import GraphError
from .simple import UndirectedGraph

Node = Hashable

#: Smoothing constant quoted in Sec. 6 of the paper.
DEFAULT_JUMP_PROBABILITY = 1e-5


def transition_matrix(
    graph: UndirectedGraph,
    nodes: Sequence[Node],
    jump_probability: float = DEFAULT_JUMP_PROBABILITY,
    self_loops: bool = False,
) -> List[List[float]]:
    """Row-stochastic transition matrix over ``nodes``.

    Each off-diagonal entry receives the additive smoothing term before
    normalization; a node with no incident weight still produces a valid
    (uniform-ish) row thanks to the smoothing.

    ``self_loops=True`` keeps diagonal weights (the YPS09 table-importance
    walk models a table's information content as a self-transition); the
    paper's schema random walk ignores them, the default.
    """
    if jump_probability < 0:
        raise GraphError("jump_probability must be non-negative")
    n = len(nodes)
    if n == 0:
        return []
    if n == 1:
        return [[1.0]]
    matrix: List[List[float]] = []
    for u in nodes:
        row = []
        for v in nodes:
            if u == v:
                row.append(graph.weight(u, v) if self_loops else 0.0)
            else:
                row.append(graph.weight(u, v) + jump_probability)
        total = sum(row)
        if total <= 0.0:
            # Isolated node with zero smoothing: make the row uniform over
            # the other nodes so the chain remains stochastic.
            uniform = 1.0 / (n - 1)
            row = [0.0 if v == u else uniform for v in nodes]
        else:
            row = [value / total for value in row]
        matrix.append(row)
    return matrix


def power_iteration(
    matrix: Sequence[Sequence[float]],
    tolerance: float = 1e-12,
    max_iterations: int = 10_000,
) -> List[float]:
    """Solve ``pi = pi M`` for a row-stochastic matrix by power iteration.

    Starts from the uniform distribution and iterates until the L1 change
    drops below ``tolerance``.  Raises :class:`GraphError` if the chain
    fails to converge within ``max_iterations`` (which indicates a
    periodic chain; smoothing prevents this in practice).
    """
    n = len(matrix)
    if n == 0:
        return []
    pi = [1.0 / n] * n
    for _ in range(max_iterations):
        nxt = [0.0] * n
        for i, p in enumerate(pi):
            if p == 0.0:
                continue
            row = matrix[i]
            for j, m in enumerate(row):
                if m:
                    nxt[j] += p * m
        total = sum(nxt)
        if total > 0:
            nxt = [value / total for value in nxt]
        delta = sum(abs(a - b) for a, b in zip(nxt, pi))
        pi = nxt
        if delta < tolerance:
            return pi
    raise GraphError(
        f"power iteration did not converge within {max_iterations} iterations"
    )


def stationary_distribution(
    graph: UndirectedGraph,
    jump_probability: float = DEFAULT_JUMP_PROBABILITY,
    tolerance: float = 1e-12,
    max_iterations: int = 10_000,
    self_loops: bool = False,
) -> Dict[Node, float]:
    """Stationary probability of each node of ``graph``.

    The returned mapping sums to 1 (up to floating point error).  The
    node iteration order of ``graph`` fixes the matrix indexing, so the
    result is deterministic for a deterministic graph construction order.
    """
    nodes = list(graph.nodes())
    matrix = transition_matrix(graph, nodes, jump_probability, self_loops=self_loops)
    # Power-iterate the *lazy* chain (I + M) / 2: it has the same
    # stationary distribution but is aperiodic, so bipartite schema
    # graphs (stars, trees) converge instead of oscillating.
    lazy = [
        [
            (value + (1.0 if i == j else 0.0)) / 2.0
            for j, value in enumerate(row)
        ]
        for i, row in enumerate(matrix)
    ]
    pi = power_iteration(lazy, tolerance=tolerance, max_iterations=max_iterations)
    return dict(zip(nodes, pi))
