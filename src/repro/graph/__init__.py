"""Graph substrate: multigraphs, traversal, random walks, cliques.

This subpackage is self-contained (no third-party dependencies) and
provides the structures the entity-graph data model and the preview
discovery algorithms are built on.
"""

from .cliques import (
    CLIQUE_BACKENDS,
    apriori_k_cliques,
    bron_kerbosch_k_cliques,
    k_cliques,
)
from .components import connected_components, is_connected, largest_component
from .distance import INFINITY, DistanceOracle
from .multigraph import DirectedMultigraph
from .simple import UndirectedGraph
from .stationary import (
    DEFAULT_JUMP_PROBABILITY,
    power_iteration,
    stationary_distribution,
    transition_matrix,
)
from .traversal import (
    all_pairs_shortest_paths,
    average_path_length,
    bfs_order,
    diameter,
    eccentricity,
    shortest_path,
    shortest_path_lengths,
)

__all__ = [
    "CLIQUE_BACKENDS",
    "DEFAULT_JUMP_PROBABILITY",
    "INFINITY",
    "DirectedMultigraph",
    "DistanceOracle",
    "UndirectedGraph",
    "all_pairs_shortest_paths",
    "apriori_k_cliques",
    "average_path_length",
    "bfs_order",
    "bron_kerbosch_k_cliques",
    "connected_components",
    "diameter",
    "eccentricity",
    "is_connected",
    "k_cliques",
    "largest_component",
    "power_iteration",
    "shortest_path",
    "shortest_path_lengths",
    "stationary_distribution",
    "transition_matrix",
]
