"""Distance oracle over schema graphs for tight/diverse constraints.

The distance between two preview tables is the shortest *undirected* path
length between their key attributes in the schema graph (Sec. 4).  The
oracle precomputes all-pairs BFS once (schema graphs are small, Table 2)
and answers pairwise queries in O(1), which is what both the
distance-checked brute force and the Apriori algorithm need.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Tuple, Union

from ..exceptions import NodeNotFoundError
from .multigraph import DirectedMultigraph
from .simple import UndirectedGraph
from .traversal import all_pairs_shortest_paths

Node = Hashable
AnyGraph = Union[DirectedMultigraph, UndirectedGraph]

#: Distance reported for mutually unreachable node pairs.
INFINITY = math.inf


class DistanceOracle:
    """Precomputed all-pairs undirected hop distances.

    Unreachable pairs have distance :data:`INFINITY`, which naturally makes
    them fail every tight constraint and satisfy every diverse constraint —
    the semantics that follow from the paper's set definitions.
    """

    def __init__(self, graph: AnyGraph) -> None:
        self._table: Dict[Node, Dict[Node, int]] = all_pairs_shortest_paths(graph)

    def distance(self, u: Node, v: Node) -> float:
        """Shortest undirected hop distance between ``u`` and ``v``."""
        try:
            row = self._table[u]
        except KeyError:
            raise NodeNotFoundError(u) from None
        if v not in self._table:
            raise NodeNotFoundError(v)
        return row.get(v, INFINITY)

    def within(self, u: Node, v: Node, d: float) -> bool:
        """True when ``dist(u, v) <= d`` (tight-preview adjacency)."""
        return self.distance(u, v) <= d

    def at_least(self, u: Node, v: Node, d: float) -> bool:
        """True when ``dist(u, v) >= d`` (diverse-preview adjacency)."""
        return self.distance(u, v) >= d

    def nodes(self) -> List[Node]:
        """Nodes present in the distance table."""
        return list(self._table)

    def matrix(self) -> Dict[Node, Dict[Node, int]]:
        """The raw (finite-entries-only) distance table, for inspection."""
        return {u: dict(row) for u, row in self._table.items()}

    def pairs_within(self, d: float) -> List[Tuple[Node, Node]]:
        """All unordered distinct pairs at distance ``<= d``."""
        nodes = list(self._table)
        out = []
        for i, u in enumerate(nodes):
            for v in nodes[i + 1:]:
                if self.within(u, v, d):
                    out.append((u, v))
        return out

    def pairs_at_least(self, d: float) -> List[Tuple[Node, Node]]:
        """All unordered distinct pairs at distance ``>= d``."""
        nodes = list(self._table)
        out = []
        for i, u in enumerate(nodes):
            for v in nodes[i + 1:]:
                if self.at_least(u, v, d):
                    out.append((u, v))
        return out
