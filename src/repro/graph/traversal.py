"""Breadth-first traversal and shortest-path utilities.

The paper's table-distance constraint (Sec. 4) is defined on the *shortest
undirected path* between two entity types in the schema graph, so all
distance computations here treat directed inputs as undirected and count
hops (edges are unweighted for distance purposes).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterator, List, Optional, Union

from ..exceptions import NodeNotFoundError
from .multigraph import DirectedMultigraph
from .simple import UndirectedGraph

Node = Hashable
AnyGraph = Union[DirectedMultigraph, UndirectedGraph]


def _undirected_neighbors(graph: AnyGraph, node: Node) -> Iterator[Node]:
    """Neighbors of ``node`` ignoring edge orientation."""
    return graph.neighbors(node)


def bfs_order(graph: AnyGraph, source: Node) -> List[Node]:
    """Return nodes in breadth-first order from ``source`` (undirected)."""
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    order: List[Node] = []
    visited = {source}
    queue: deque = deque([source])
    while queue:
        node = queue.popleft()
        order.append(node)
        for nbr in _undirected_neighbors(graph, node):
            if nbr not in visited:
                visited.add(nbr)
                queue.append(nbr)
    return order


def shortest_path_lengths(graph: AnyGraph, source: Node) -> Dict[Node, int]:
    """Single-source shortest path lengths in hops, undirected view.

    Unreachable nodes are absent from the returned mapping.
    """
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    dist: Dict[Node, int] = {source: 0}
    queue: deque = deque([source])
    while queue:
        node = queue.popleft()
        d = dist[node]
        for nbr in _undirected_neighbors(graph, node):
            if nbr not in dist:
                dist[nbr] = d + 1
                queue.append(nbr)
    return dist


def shortest_path(graph: AnyGraph, source: Node, target: Node) -> Optional[List[Node]]:
    """One shortest undirected path ``source .. target`` or None."""
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    if not graph.has_node(target):
        raise NodeNotFoundError(target)
    if source == target:
        return [source]
    parent: Dict[Node, Node] = {source: source}
    queue: deque = deque([source])
    while queue:
        node = queue.popleft()
        for nbr in _undirected_neighbors(graph, node):
            if nbr in parent:
                continue
            parent[nbr] = node
            if nbr == target:
                path = [target]
                while path[-1] != source:
                    path.append(parent[path[-1]])
                path.reverse()
                return path
            queue.append(nbr)
    return None


def all_pairs_shortest_paths(graph: AnyGraph) -> Dict[Node, Dict[Node, int]]:
    """All-pairs shortest path lengths (hops, undirected view).

    Runs one BFS per node: O(V * (V + E)).  Schema graphs have at most a
    few hundred vertices (Table 2), so this is cheap and is what the paper
    precomputes before preview discovery.
    """
    return {node: shortest_path_lengths(graph, node) for node in graph.nodes()}


def eccentricity(graph: AnyGraph, node: Node) -> int:
    """Maximum finite distance from ``node`` to any reachable node."""
    lengths = shortest_path_lengths(graph, node)
    return max(lengths.values())


def diameter(graph: AnyGraph) -> int:
    """Longest shortest path over all reachable pairs (undirected).

    For a disconnected graph this is the maximum over components (the
    paper quotes "the longest path length is 7" for the film domain's
    schema graph in this sense).  Returns 0 for an empty graph.
    """
    best = 0
    for node in graph.nodes():
        ecc = eccentricity(graph, node)
        if ecc > best:
            best = ecc
    return best


def average_path_length(graph: AnyGraph) -> float:
    """Mean finite pairwise distance over ordered reachable pairs.

    Returns 0.0 when the graph has fewer than two mutually reachable
    nodes.  The paper quotes "average path length is around 3-4" for the
    film schema graph.
    """
    total = 0
    pairs = 0
    for node in graph.nodes():
        for other, d in shortest_path_lengths(graph, node).items():
            if other != node:
                total += d
                pairs += 1
    if pairs == 0:
        return 0.0
    return total / pairs
