"""Backend contract and conformance oracle for the batched scoring kernel.

A kernel backend scores *batches* of key subsets against one candidate
pool instead of running :func:`~repro.core.candidates.build_allocation_profile`
once per subset.  The batched formulation rests on an identity of the
Theorem-3 merge: because every weighted row ``S(τ) × Sτ(γ)`` is sorted
non-increasing and key scores are non-negative, the merge score at extra
budget ``c`` equals

    (sum of each key's top-1 weighted score, in key order)
  + (sum of the ``c`` largest strictly-positive values in the union of
     the per-key weighted tails ``row[1 : c + 1]``, in descending order)

and accumulating those terms sequentially in exactly that order
reproduces the heap-merge float sum bit for bit (equal floats commute
exactly, and the merge stops at the first non-positive pop, which is
the same set as the strictly-positive filter).

Every backend honors the same contract:

* ``lower(source)`` builds backend-private columns from anything that
  exposes ``index`` (TypeId -> row) and ``weighted`` (per-type sorted
  rows) — both :class:`~repro.scoring.CandidatePool` and
  :class:`~repro.parallel.ScoringSnapshot` qualify.
* ``best_allocation(columns, subsets, extra_cap)`` returns the best
  ``(score, subset_index)`` with the serial strict-``>`` tie-break
  (lowest index among equal scores), or None when every subset is
  infeasible (duplicate keys, or a key with an empty candidate list).
* ``batch_scores(columns, subsets, extra_cap)`` returns one
  ``Optional[float]`` per subset (None = infeasible) — the conformance
  surface the property tests diff against :class:`OracleBackend`.

:class:`OracleBackend` *is* the retained per-subset path: it runs the
original heap merge for each subset, so any batched backend can be
checked against it on arbitrary pools.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import UnknownTypeError
from ..model.ids import TypeId

#: A batch of key subsets, each a tuple of entity-type ids.
Subsets = Sequence[Tuple[TypeId, ...]]
#: ``(score, subset_index)`` of a batch winner, or None when none is feasible.
BestAllocation = Optional[Tuple[float, int]]

#: Rows per kernel invocation when a consumer streams an unbounded subset
#: generator (brute force) or a backend bounds its working set (numpy).
BATCH_SIZE = 16384

_STATS_LOCK = threading.Lock()
_BATCHES = 0
_SUBSETS = 0


def record_batch(subset_count: int) -> None:
    """Count one batched kernel dispatch of ``subset_count`` subsets.

    Called at consumer dispatch sites (serial kernel calls and the
    parent side of sharded dispatches), not inside the backends, so
    worker processes and direct backend probes never skew the totals.
    """
    global _BATCHES, _SUBSETS
    with _STATS_LOCK:
        _BATCHES += 1
        _SUBSETS += subset_count


def kernel_stats() -> Dict[str, int]:
    """Cumulative ``{"batches", "subsets"}`` counters for this process."""
    with _STATS_LOCK:
        return {"batches": _BATCHES, "subsets": _SUBSETS}


def reset_kernel_stats() -> None:
    """Zero the cumulative counters (benchmarks isolate legs with this)."""
    global _BATCHES, _SUBSETS
    with _STATS_LOCK:
        _BATCHES = 0
        _SUBSETS = 0


def observe_lowering(backend: str, rows: int, seconds: float) -> None:
    """Forward one columnar-lowering timing to the execution planner.

    Backends call this from ``lower()`` with the number of weighted
    rows lowered; the planner's cost model treats lowering as the
    serial path's per-call setup term (see :mod:`repro.plan`).  The
    import is call-time so backend modules stay loadable standalone.
    """
    from .. import plan

    plan.observe_lowering(backend, rows, seconds)


def resolve_indices(index: Dict[TypeId, int], keys: Sequence[TypeId]) -> List[int]:
    """Map a key subset to pool row indices; unknown keys raise."""
    try:
        return [index[key] for key in keys]
    except KeyError as exc:
        raise UnknownTypeError(exc.args[0]) from None


class KernelBackend:
    """Shared surface of every kernel backend (see module docstring)."""

    #: Registry name, also reported by ``PreviewEngine.cache_info()``.
    name = "abstract"

    def lower(self, source) -> object:
        """Backend-private columns for one pool/snapshot ``source``."""
        raise NotImplementedError

    def best_allocation(
        self, columns, subsets: Subsets, extra_cap: int
    ) -> BestAllocation:
        """Batch winner under the serial tie-break, or None."""
        raise NotImplementedError

    def batch_scores(
        self, columns, subsets: Subsets, extra_cap: int
    ) -> List[Optional[float]]:
        """Per-subset scores (None = infeasible), positionally aligned."""
        raise NotImplementedError


class OracleBackend(KernelBackend):
    """The per-subset reference path, wrapped in the batch interface.

    Runs the original heap merge once per subset — no columnar tricks —
    so its answers define bit-identity for the batched backends.
    """

    name = "oracle"

    def lower(self, source):
        # build_allocation_profile reads index/weighted/attrs directly;
        # both pool and snapshot already expose them.
        """Identity lowering: the oracle reads source columns directly."""
        return source

    def best_allocation(self, columns, subsets, extra_cap):
        """Best allocation per subset via the retained per-subset path."""
        from ..core.candidates import build_allocation_profile

        best_score = float("-inf")
        best_at = -1
        for at, keys in enumerate(subsets):
            if len(set(keys)) != len(keys):
                continue
            profile = build_allocation_profile(columns, keys, cap=extra_cap)
            if profile is None:
                continue
            score = profile.score_at(extra_cap)
            if score > best_score:
                best_score = score
                best_at = at
        if best_at < 0:
            return None
        return best_score, best_at

    def batch_scores(self, columns, subsets, extra_cap):
        """Score each subset via the retained per-subset path."""
        from ..core.candidates import build_allocation_profile

        scores: List[Optional[float]] = []
        for keys in subsets:
            if len(set(keys)) != len(keys):
                scores.append(None)
                continue
            profile = build_allocation_profile(columns, keys, cap=extra_cap)
            scores.append(
                None if profile is None else profile.score_at(extra_cap)
            )
        return scores
