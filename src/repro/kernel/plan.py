"""Back-compat shim: dispatch planning moved to :mod:`repro.plan`.

PR 6 introduced this module with one static threshold; the planner
outgrew the kernel package and now lives in ``repro.plan`` (cost model,
mode forcing, adaptive shard sizing, decision counters).  The names
historically imported from here keep working — they are the same
objects — but new code should import :mod:`repro.plan` directly.
"""

from __future__ import annotations

from ..plan import (  # noqa: F401  (re-exported compatibility surface)
    DEFAULT_DISPATCH_THRESHOLD,
    ENV_THRESHOLD,
    dispatch_threshold,
    estimated_subsets,
    should_shard,
    usable_cpus,
)

__all__ = [
    "DEFAULT_DISPATCH_THRESHOLD",
    "ENV_THRESHOLD",
    "dispatch_threshold",
    "estimated_subsets",
    "should_shard",
    "usable_cpus",
]
