"""Dispatch planning: when is sharding worth the process-pool overhead?

The batched kernel moved the break-even point.  Scoring a few thousand
subsets serially now costs single-digit milliseconds — less than one
pickle round-trip of a :class:`~repro.parallel.ScoringSnapshot` plus
shard payloads — so small points must never pay for the pool (the
``BENCH_workload.json`` regression this planner fixes: the sharded path
ran every tiny bench-mixed query through worker processes).

Three cheap signals drive the decision:

* :func:`estimated_subsets` — ``C(|eligible|, k)`` from candidate-pool
  stats, an upper bound on the qualifying-subset count that brute force
  consults *before* materializing its combination stream;
* :func:`dispatch_threshold` — the subset count below which every
  consumer runs the serial kernel inline, tunable via
  ``REPRO_DISPATCH_THRESHOLD`` for benchmarking the crossover;
* :func:`usable_cpus` — worker processes squeezed onto one core
  serialize anyway, so a single-core affinity mask vetoes sharding
  outright.
"""

from __future__ import annotations

import math
import os

from .. import config
from ..exceptions import KernelError

#: Environment override for the sharding crossover point (declared in
#: :mod:`repro.config`; the name is kept here for subprocess spawners).
ENV_THRESHOLD = config.DISPATCH_THRESHOLD.name

#: Below this many subsets, process-pool dispatch costs more than the
#: serial kernel call it would replace (measured on the bench-mixed
#: workload trace; see docs/scoring-kernel.md).
DEFAULT_DISPATCH_THRESHOLD = 4096


def dispatch_threshold() -> int:
    """The effective sharding threshold (env override or default)."""
    raw = config.raw_knob(ENV_THRESHOLD)
    if raw is None:
        return DEFAULT_DISPATCH_THRESHOLD
    try:
        value = int(raw)
    except ValueError:
        raise KernelError(
            f"{ENV_THRESHOLD} must be an integer, got {raw!r}"
        ) from None
    if value < 0:
        raise KernelError(f"{ENV_THRESHOLD} must be >= 0, got {value}")
    return value


def usable_cpus() -> int:
    """CPU cores this process may actually run on."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def should_shard(subset_count: int, jobs: int) -> bool:
    """Whether ``subset_count`` subsets justify ``jobs`` worker processes.

    Requires both enough work (the threshold) and enough hardware:
    worker processes pinned to a single core serialize anyway, so on a
    one-core box sharding is pure snapshot-pickling overhead and the
    planner always answers no, whatever ``jobs`` was requested.
    """
    if jobs <= 1 or min(jobs, usable_cpus()) <= 1:
        return False
    return subset_count >= dispatch_threshold()


def estimated_subsets(eligible_count: int, k: int) -> int:
    """Upper bound on the qualifying k-subset count: ``C(eligible, k)``."""
    if k < 0 or k > eligible_count:
        return 0
    return math.comb(eligible_count, k)
