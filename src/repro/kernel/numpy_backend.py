"""Optional numpy backend — vectorized batch scoring.

Imported only when selected (``REPRO_KERNEL=numpy`` or ``auto`` with
numpy installed); the module import itself fails cleanly when numpy is
absent, and :mod:`repro.kernel` turns that into a
:class:`~repro.exceptions.KernelError`.

Lowering pads the per-type weighted rows into one ``(K, W)`` float64
rectangle with a row-length validity vector; per extra budget a
``(K, cap)`` strictly-positive tail rectangle is cached.  A batch of
``B`` k-subsets becomes a ``(B, k)`` index matrix — resolved once per
call with ``np.fromiter`` over C-level iterators, the dominant python
cost at batch sizes in the hundreds of thousands.  Scoring gathers the
top-1 column and the tail rectangles, keeps the ``cap`` largest tail
values per subset via ``np.partition``, and accumulates *column by
column* — never ``np.sum`` over the reduction axis, whose pairwise
summation would break bit-identity with the sequential oracle.  Sorted
equal floats commute exactly and zero padding adds ``+0.0`` to
non-negative partial sums, so every score matches the heap merge bit
for bit.  Gather temporaries are bounded by processing
:data:`~repro.kernel.base.BATCH_SIZE` rows at a time.
"""

from __future__ import annotations

import time
from itertools import chain
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..exceptions import UnknownTypeError
from .base import BATCH_SIZE, KernelBackend, observe_lowering


class NumpyColumns:
    """Rectangular lowering used by :class:`NumpyBackend`."""

    __slots__ = ("index", "rect", "lengths", "_tails")

    def __init__(
        self,
        index: Dict[object, int],
        weighted: Tuple[Tuple[float, ...], ...],
    ) -> None:
        self.index = index
        width = max((len(row) for row in weighted), default=0)
        rect = np.zeros((len(weighted), max(width, 1)), dtype=np.float64)
        for i, row in enumerate(weighted):
            if row:
                rect[i, : len(row)] = row
        self.rect = rect
        self.lengths = np.array([len(row) for row in weighted], dtype=np.intp)
        self._tails: Dict[int, np.ndarray] = {}

    def tails(self, cap: int) -> np.ndarray:
        """``(K, cap)`` strictly-positive merge tails, zero-padded."""
        cached = self._tails.get(cap)
        if cached is None:
            body = self.rect[:, 1 : cap + 1]
            if body.shape[1] < cap:
                pad = np.zeros(
                    (body.shape[0], cap - body.shape[1]), dtype=np.float64
                )
                body = np.concatenate([body, pad], axis=1)
            # np.where, not np.maximum: keeps padding an exact +0.0 and
            # drops every non-positive value like the merge's early stop.
            cached = np.where(body > 0.0, body, 0.0)
            self._tails[cap] = cached
        return cached


class NumpyBackend(KernelBackend):
    """Vectorized batched scoring over :class:`NumpyColumns`."""

    name = "numpy"

    def lower(self, source) -> NumpyColumns:
        """Lower source columns to padded numpy rectangles."""
        start = time.perf_counter()
        columns = NumpyColumns(source.index, source.weighted)
        observe_lowering(
            self.name, len(source.weighted), time.perf_counter() - start
        )
        return columns

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def _resolve(self, columns: NumpyColumns, subsets, k: int) -> np.ndarray:
        """``(len(subsets), k)`` row-index matrix for uniform-arity subsets."""
        try:
            flat = np.fromiter(
                map(columns.index.__getitem__, chain.from_iterable(subsets)),
                dtype=np.intp,
                count=len(subsets) * k,
            )
        except KeyError as exc:
            raise UnknownTypeError(exc.args[0]) from None
        return flat.reshape(len(subsets), k)

    def _uniform_scores(
        self, columns: NumpyColumns, idx: np.ndarray, extra_cap: int
    ) -> np.ndarray:
        """Scores for one ``(B, k)`` index chunk; ``-inf`` = infeasible."""
        count, k = idx.shape
        feasible = (columns.lengths[idx] > 0).all(axis=1)
        if k > 1:
            ordered = np.sort(idx, axis=1)
            feasible &= (ordered[:, 1:] != ordered[:, :-1]).all(axis=1)
        acc = np.zeros(count, dtype=np.float64)
        first = columns.rect[:, 0]
        for j in range(k):
            acc += first[idx[:, j]]
        if extra_cap > 0 and k > 0:
            tails = columns.tails(extra_cap)
            if k == 1:
                merged = tails[idx[:, 0]]
                # Rows are already descending: accumulate left to right.
                for j in range(merged.shape[1]):
                    acc += merged[:, j]
            else:
                flat_width = k * extra_cap
                merged = tails[idx].reshape(count, flat_width)
                if flat_width > extra_cap:
                    merged = np.partition(
                        merged, flat_width - extra_cap, axis=1
                    )[:, flat_width - extra_cap :]
                merged = np.sort(merged, axis=1)
                # Ascending sort, so accumulate right to left to match
                # the merge's descending pop order.
                for j in range(merged.shape[1] - 1, -1, -1):
                    acc += merged[:, j]
        return np.where(feasible, acc, -np.inf)

    def _scores_array(
        self, columns: NumpyColumns, subsets, extra_cap: int
    ) -> np.ndarray:
        """One score per subset (``-inf`` = infeasible), original order."""
        total = len(subsets)
        arities = np.fromiter(map(len, subsets), dtype=np.intp, count=total)
        scores = np.empty(total, dtype=np.float64)
        if arities.min() == arities.max():
            idx = self._resolve(columns, subsets, int(arities[0]))
            for start in range(0, total, BATCH_SIZE):
                scores[start : start + BATCH_SIZE] = self._uniform_scores(
                    columns, idx[start : start + BATCH_SIZE], extra_cap
                )
            return scores
        # Rare mixed-arity batch: vectorize per arity, scatter back.
        by_len: Dict[int, List[int]] = {}
        for position, keys in enumerate(subsets):
            by_len.setdefault(len(keys), []).append(position)
        for k, positions in by_len.items():
            idx = self._resolve(
                columns, [subsets[position] for position in positions], k
            )
            group = np.empty(len(positions), dtype=np.float64)
            for start in range(0, len(positions), BATCH_SIZE):
                group[start : start + BATCH_SIZE] = self._uniform_scores(
                    columns, idx[start : start + BATCH_SIZE], extra_cap
                )
            scores[np.array(positions, dtype=np.intp)] = group
        return scores

    # ------------------------------------------------------------------
    # KernelBackend surface
    # ------------------------------------------------------------------
    def best_allocation(self, columns, subsets, extra_cap):
        """Vectorized best-allocation over the whole batch."""
        if not subsets:
            return None
        scores = self._scores_array(columns, subsets, extra_cap)
        # argmax keeps the first occurrence of the maximum: the winner is
        # the lowest-index subset among equal scores, matching the serial
        # strict-``>`` loops.
        position = int(np.argmax(scores))
        score = float(scores[position])
        if score == float("-inf"):
            return None
        return score, position

    def batch_scores(self, columns, subsets, extra_cap):
        """Vectorized scores for every subset in the batch."""
        if not subsets:
            return []
        scores = self._scores_array(columns, subsets, extra_cap)
        infeasible = np.isneginf(scores)
        return [
            None if dead else value
            for value, dead in zip(scores.tolist(), infeasible.tolist())
        ]
