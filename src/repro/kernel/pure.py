"""Pure-python batched backend — always available, stdlib only.

Lowers the per-type weighted rows once into top-1 scalars plus
cap-trimmed strictly-positive tails, then scores each subset with three
C-speed primitives (``list.sort``, slicing, ``sum`` with a float start)
instead of a per-pick heap.  The accumulation order — top-1 scores in
key order, then merged tail values in descending order — is exactly the
heap-merge pop order, so results are bit-identical to
:class:`~repro.kernel.base.OracleBackend` (see the base module
docstring for the identity this relies on).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from ..exceptions import UnknownTypeError
from .base import KernelBackend, observe_lowering


class PythonColumns:
    """Columnar lowering used by :class:`PythonBackend`.

    ``tops[i]`` is row ``i``'s mandatory top-1 weighted score (None for
    an empty row = infeasible key) and :meth:`tails` caches, per extra
    budget, each row's strictly-positive merge tail ``row[1 : cap + 1]``
    — the only candidates the Theorem-3 merge can ever pick at that
    budget.
    """

    __slots__ = ("index", "weighted", "tops", "_tails")

    def __init__(
        self,
        index: Dict[object, int],
        weighted: Tuple[Tuple[float, ...], ...],
    ) -> None:
        self.index = index
        self.weighted = weighted
        self.tops: Tuple[Optional[float], ...] = tuple(
            row[0] if row else None for row in weighted
        )
        self._tails: Dict[int, Tuple[Tuple[float, ...], ...]] = {}

    def tails(self, cap: int) -> Tuple[Tuple[float, ...], ...]:
        """Cached per-column tail-sum table for allocation cap ``cap``."""
        cached = self._tails.get(cap)
        if cached is None:
            cached = tuple(
                tuple(value for value in row[1 : cap + 1] if value > 0.0)
                for row in self.weighted
            )
            self._tails[cap] = cached
        return cached


class PythonBackend(KernelBackend):
    """Batched scoring with stdlib primitives only."""

    name = "python"

    def lower(self, source) -> PythonColumns:
        """Lower source columns to the stdlib batched layout."""
        start = time.perf_counter()
        columns = PythonColumns(source.index, source.weighted)
        observe_lowering(
            self.name, len(source.weighted), time.perf_counter() - start
        )
        return columns

    def best_allocation(self, columns, subsets, extra_cap):
        """Batched best-allocation using stdlib-only arithmetic."""
        index = columns.index
        tops = columns.tops
        tails = columns.tails(extra_cap) if extra_cap > 0 else None
        best_score = float("-inf")
        best_at = -1
        for at, keys in enumerate(subsets):
            try:
                indices = [index[key] for key in keys]
            except KeyError as exc:
                raise UnknownTypeError(exc.args[0]) from None
            base = 0.0
            for i in indices:
                top = tops[i]
                if top is None:
                    base = None
                    break
                base += top
            if base is None or len(set(indices)) != len(indices):
                continue
            if tails is None:
                score = base
            else:
                merged: List[float] = []
                for i in indices:
                    merged += tails[i]
                if len(merged) > 1:
                    if len(indices) > 1:
                        # Single-key tails are already descending.
                        merged.sort(reverse=True)
                    del merged[extra_cap:]
                score = sum(merged, base)
            if score > best_score:
                best_score = score
                best_at = at
        if best_at < 0:
            return None
        return best_score, best_at

    def batch_scores(self, columns, subsets, extra_cap):
        """Batched subset scores using stdlib-only arithmetic."""
        index = columns.index
        tops = columns.tops
        tails = columns.tails(extra_cap) if extra_cap > 0 else None
        scores: List[Optional[float]] = []
        for keys in subsets:
            try:
                indices = [index[key] for key in keys]
            except KeyError as exc:
                raise UnknownTypeError(exc.args[0]) from None
            base = 0.0
            for i in indices:
                top = tops[i]
                if top is None:
                    base = None
                    break
                base += top
            if base is None or len(set(indices)) != len(indices):
                scores.append(None)
                continue
            if tails is None:
                scores.append(base)
                continue
            merged: List[float] = []
            for i in indices:
                merged += tails[i]
            if len(merged) > 1:
                if len(indices) > 1:
                    merged.sort(reverse=True)
                del merged[extra_cap:]
            scores.append(sum(merged, base))
        return scores
