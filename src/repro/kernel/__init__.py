"""repro.kernel — batched columnar scoring with selectable backends.

The kernel scores *batches* of key subsets per call (columnar lowering,
batch-at-a-time evaluation) instead of re-running the per-subset heap
merge, with three interchangeable backends behind one interface:

``python``
    Pure-stdlib batched backend, always available — the default when
    numpy is not installed.  ``pip install repro`` stays dependency-free.
``numpy``
    Vectorized backend over padded rectangles; optional, selected
    automatically when numpy is importable.
``oracle``
    The retained per-subset path (the original heap merge), used as the
    conformance baseline by tests and benchmarks.

Selection happens through the ``REPRO_KERNEL`` environment variable
(``auto`` | ``python`` | ``numpy`` | ``oracle``; default ``auto``), read
once on first use; :func:`set_backend` / :func:`use_backend` switch
in-process.  All backends return bit-identical scores and the serial
lowest-index tie-break — see ``docs/scoring-kernel.md``.
"""

from __future__ import annotations

import importlib.util
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Tuple

from .. import config
from ..exceptions import KernelError
from .base import (
    BATCH_SIZE,
    BestAllocation,
    KernelBackend,
    OracleBackend,
    Subsets,
    kernel_stats,
    record_batch,
    reset_kernel_stats,
)
from ..plan import (
    DEFAULT_DISPATCH_THRESHOLD,
    dispatch_threshold,
    estimated_subsets,
    observe_serial,
    should_shard,
)
from .pure import PythonBackend

__all__ = [
    "BATCH_SIZE",
    "DEFAULT_DISPATCH_THRESHOLD",
    "ENV_BACKEND",
    "KernelBackend",
    "OracleBackend",
    "PythonBackend",
    "active_backend",
    "available_backends",
    "backend_name",
    "best_allocation",
    "dispatch_threshold",
    "estimated_subsets",
    "get_backend",
    "kernel_stats",
    "record_batch",
    "reset_kernel_stats",
    "set_backend",
    "should_shard",
    "use_backend",
]

#: Environment variable naming the backend to activate on first use
#: (declared in :mod:`repro.config`; kept here for callers that
#: reference the name when spawning subprocesses).
ENV_BACKEND = config.KERNEL.name

_CACHE: Dict[str, KernelBackend] = {}
_active = None


def _numpy_available() -> bool:
    # find_spec, not import: probing must never pull numpy into a
    # process that selected the python backend.
    return importlib.util.find_spec("numpy") is not None


def available_backends() -> Tuple[str, ...]:
    """Backend names loadable in this environment."""
    names = ["oracle", "python"]
    if _numpy_available():
        names.append("numpy")
    return tuple(names)


def get_backend(name: str) -> KernelBackend:
    """The backend registered under ``name`` (resolving ``auto``).

    Raises :class:`~repro.exceptions.KernelError` for unknown names and
    for ``numpy`` when numpy is not installed.  Worker processes call
    this with the backend name shipped in their shard payload.
    """
    cached = _CACHE.get(name)
    if cached is not None:
        return cached
    if name == "auto":
        backend = get_backend("numpy" if _numpy_available() else "python")
    elif name == "oracle":
        backend = OracleBackend()
    elif name == "python":
        backend = PythonBackend()
    elif name == "numpy":
        try:
            from .numpy_backend import NumpyBackend
        except ImportError:
            raise KernelError(
                "kernel backend 'numpy' requested but numpy is not "
                "installed; install numpy or select REPRO_KERNEL=python"
            ) from None
        backend = NumpyBackend()
    else:
        raise KernelError(
            f"unknown kernel backend {name!r}; expected one of "
            "auto, oracle, python, numpy"
        )
    _CACHE[name] = backend
    return backend


def active_backend() -> KernelBackend:
    """The process-wide backend, resolving ``REPRO_KERNEL`` on first use."""
    global _active
    if _active is None:
        _active = get_backend(config.kernel_backend())
    return _active


def backend_name() -> str:
    """Name of the active backend (``oracle`` | ``python`` | ``numpy``)."""
    return active_backend().name


def set_backend(name: str) -> KernelBackend:
    """Activate ``name`` process-wide; returns the backend."""
    global _active
    _active = get_backend(name)
    return _active


@contextmanager
def use_backend(name: str) -> Iterator[KernelBackend]:
    """Temporarily activate ``name`` (tests and benchmark legs)."""
    global _active
    previous = _active
    _active = get_backend(name)
    try:
        yield _active
    finally:
        _active = previous


def best_allocation(source, subsets: Subsets, extra_cap: int) -> BestAllocation:
    """One-shot serial dispatch: lower ``source``, score, count the batch.

    The entry every serial consumer uses; sharded dispatch goes through
    :meth:`~repro.parallel.ShardedExecutor.best_allocation`, which
    records its batch on the parent side instead.
    """
    if not subsets:
        return None
    backend = active_backend()
    record_batch(len(subsets))
    start = time.perf_counter()
    result = backend.best_allocation(
        backend.lower(source), subsets, extra_cap
    )
    observe_serial(backend.name, len(subsets), time.perf_counter() - start)
    return result
