"""Command-line entry point: ``repro-preview lint`` / ``python -m repro.lint``.

Exit codes: 0 when no active findings remain after suppression, 1 when
findings (including stale suppressions) survive, 2 for usage/config
errors (unreadable paths, malformed suppressions file).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from ..exceptions import LintError
from .analysis import lint_paths, rule_catalog
from .suppressions import apply_suppressions, load_suppressions

#: The trees ``repro-preview lint`` checks when invoked bare (mirrors
#: the CI lint leg).
DEFAULT_PATHS = ("src", "tests", "benchmarks", "examples", "tools")

DEFAULT_SUPPRESSIONS = "lint-suppressions.txt"


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-preview lint`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-preview lint",
        description=(
            "Check the codebase's determinism, isolation and error-policy "
            "contracts with one AST pass per file."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=(
            "files or directories to lint (default: "
            + " ".join(DEFAULT_PATHS)
            + ", those that exist)"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--suppressions",
        default=DEFAULT_SUPPRESSIONS,
        help=(
            "suppressions file; missing file means no suppressions "
            f"(default: {DEFAULT_SUPPRESSIONS})"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _default_paths() -> List[str]:
    return [path for path in DEFAULT_PATHS if Path(path).exists()]


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the linter; returns the process exit code."""
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        catalog = rule_catalog()
        if options.format == "json":
            print(json.dumps(catalog, indent=2))
        else:
            for rule in catalog:
                scope = ", ".join(rule["modules"]) or "all modules"
                print(f"{rule['rule_id']} {rule['name']} [{scope}]")
                print(f"    {rule['description']}")
        return 0

    paths = list(options.paths) or _default_paths()
    if not paths:
        print("repro-preview lint: no paths to lint", file=sys.stderr)
        return 2

    try:
        findings = lint_paths(paths)
        suppressions = load_suppressions(options.suppressions)
    except LintError as exc:
        print(f"repro-preview lint: {exc}", file=sys.stderr)
        return 2

    active, suppressed = apply_suppressions(
        findings, suppressions, origin=Path(options.suppressions).as_posix()
    )

    if options.format == "json":
        print(
            json.dumps(
                {
                    "findings": [finding.to_dict() for finding in active],
                    "suppressed": [finding.to_dict() for finding in suppressed],
                },
                indent=2,
            )
        )
    else:
        for finding in active:
            print(finding.format())
        summary = f"{len(active)} finding(s)"
        if suppressed:
            summary += f", {len(suppressed)} suppressed"
        print(summary)
    return 1 if active else 0
