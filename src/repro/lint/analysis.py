"""The single-pass analyzer: one AST walk per file, all rules at once.

:func:`lint_file` parses a file, derives its dotted module name (or
accepts an override — how the fixture corpus places snippets inside a
scoped subtree), instantiates every in-scope rule checker, and walks the
tree exactly once.  The walker maintains the structural context rules
need — enclosing function/class stacks, async-ness, handler nesting —
in a :class:`FileContext` passed to every ``check`` call, so no rule
ever re-traverses the tree.

:func:`lint_paths` extends this over files and directory trees, skipping
fixture corpora (any directory named ``data``) and caches/VCS internals.
"""

from __future__ import annotations

import ast
from pathlib import Path, PurePosixPath
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type

from ..exceptions import LintError
from .findings import PARSE_ERROR_ID, Finding
from .registry import LINT_RULES, LintRule, rules_for_module

#: Directory names never descended into by :func:`lint_paths`.  ``data``
#: covers fixture corpora (``tests/data/lint`` holds deliberate
#: violations the self-tests lint explicitly, with module overrides).
SKIPPED_DIRS = frozenset(
    {"data", "__pycache__", ".git", ".hypothesis", ".pytest_cache", "results"}
)

#: Top-level trees whose files map to dotted modules without an ``src``
#: marker (``tests/test_x.py`` -> ``tests.test_x``).
_BARE_TREES = ("tests", "benchmarks", "examples", "tools", "docs")


def module_name_for(path: "str | Path") -> str:
    """The dotted module name a file would import as.

    ``src/<pkg>/...`` maps through the last ``src`` marker
    (``src/repro/core/apriori.py`` -> ``repro.core.apriori``); the
    repo's script trees map from their root (``tools/check_docs.py`` ->
    ``tools.check_docs``); anything else maps to its bare stem.
    ``__init__`` components are dropped, so a package file scopes as the
    package itself.
    """
    parts = PurePosixPath(Path(path).as_posix()).parts
    anchor: Optional[int] = None
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "src":
            anchor = index + 1
            break
    if anchor is None:
        for index in range(len(parts) - 1, -1, -1):
            if parts[index] in _BARE_TREES:
                anchor = index
                break
    rel = parts[anchor:] if anchor is not None else parts[-1:]
    pieces = [piece[:-3] if piece.endswith(".py") else piece for piece in rel]
    if pieces and pieces[-1] == "__init__":
        pieces = pieces[:-1]
    return ".".join(pieces)


class FileContext:
    """Per-file state shared by every rule during the single AST pass.

    Attributes
    ----------
    path:
        The file's path as reported in findings (posix separators).
    module:
        The dotted module name used for rule scoping.
    function_stack:
        Enclosing ``FunctionDef``/``AsyncFunctionDef`` nodes, outermost
        first (updated by the walker as it descends).
    class_stack:
        Enclosing ``ClassDef`` nodes, outermost first.
    tree:
        The parsed module, for rules that need module-level structure.
    """

    def __init__(self, path: str, module: str, tree: ast.Module) -> None:
        self.path = path
        self.module = module
        self.tree = tree
        self.function_stack: List[ast.AST] = []
        self.class_stack: List[ast.ClassDef] = []

    def in_async_function(self) -> bool:
        """Whether the *innermost* enclosing function is ``async def``.

        A synchronous ``def`` nested inside an ``async def`` (the
        worker-thread closure idiom) answers False: its body runs off
        the event loop.
        """
        if not self.function_stack:
            return False
        return isinstance(self.function_stack[-1], ast.AsyncFunctionDef)

    def at_module_level(self) -> bool:
        """Whether the walker is outside any function body."""
        return not self.function_stack

    def in_public_api(self) -> bool:
        """Whether the enclosing def/class chain is all public names.

        Module-level code counts as public; any ``_underscore`` function
        or class on the stack makes the location private.
        """
        for node in self.function_stack:
            if getattr(node, "name", "_").startswith("_"):
                return False
        for cls in self.class_stack:
            if cls.name.startswith("_"):
                return False
        return True


class _Walker:
    """Depth-first traversal dispatching nodes to interested checkers."""

    def __init__(self, ctx: FileContext, rules: Sequence[LintRule]) -> None:
        self.ctx = ctx
        self.findings: List[Finding] = []
        self._checkers: List[Tuple[LintRule, object]] = [
            (rule, rule.checker()) for rule in rules
        ]
        self._interested: Dict[Type, List[Tuple[LintRule, object]]] = {}
        for rule, checker in self._checkers:
            for node_type in checker.interests:
                self._interested.setdefault(node_type, []).append((rule, checker))

    def walk(self, node: ast.AST) -> None:
        for rule, checker in self._interested.get(type(node), ()):
            for where, message, hint in checker.check(node, self.ctx):
                self.findings.append(
                    Finding(
                        path=self.ctx.path,
                        line=getattr(where, "lineno", 1),
                        rule_id=rule.rule_id,
                        message=message,
                        hint=hint,
                    )
                )
        is_function = isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        is_class = isinstance(node, ast.ClassDef)
        if is_function:
            self.ctx.function_stack.append(node)
        if is_class:
            self.ctx.class_stack.append(node)
        try:
            for child in ast.iter_child_nodes(node):
                self.walk(child)
        finally:
            if is_function:
                self.ctx.function_stack.pop()
            if is_class:
                self.ctx.class_stack.pop()


def lint_source(
    source: str,
    path: str,
    module: Optional[str] = None,
    rules: Optional[Iterable[LintRule]] = None,
) -> List[Finding]:
    """Lint python ``source`` attributed to ``path``.

    ``module`` overrides the derived dotted name — the fixture corpus
    uses this to place snippets inside scoped subtrees (a file on disk
    under ``tests/data/lint`` can lint as if it were
    ``repro.core.sample``).  ``rules`` restricts the run to an explicit
    rule set (default: every registered rule in scope).

    Returns the findings sorted by ``(path, line, rule_id)``; an
    unparseable file yields a single :data:`PARSE_ERROR_ID` finding.
    """
    module_name = module if module is not None else module_name_for(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                rule_id=PARSE_ERROR_ID,
                message=f"file does not parse: {exc.msg}",
                hint="fix the syntax error; no other rule ran on this file",
            )
        ]
    if rules is None:
        in_scope: Sequence[LintRule] = rules_for_module(module_name)
    else:
        in_scope = [rule for rule in rules if rule.applies_to(module_name)]
    ctx = FileContext(path=path, module=module_name, tree=tree)
    walker = _Walker(ctx, in_scope)
    walker.walk(tree)
    return sorted(walker.findings)


def lint_file(
    path: "str | Path",
    module: Optional[str] = None,
    rules: Optional[Iterable[LintRule]] = None,
) -> List[Finding]:
    """Lint one file from disk (see :func:`lint_source`).

    Raises
    ------
    LintError
        When the file cannot be read.
    """
    file_path = Path(path)
    try:
        source = file_path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        raise LintError(f"cannot read {file_path}: {exc}") from exc
    return lint_source(
        source, path=file_path.as_posix(), module=module, rules=rules
    )


def iter_python_files(paths: Sequence["str | Path"]) -> List[Path]:
    """Every ``.py`` file under ``paths``, in sorted order.

    Directories are walked recursively, skipping :data:`SKIPPED_DIRS`
    and hidden directories; explicit file arguments are taken verbatim
    (even a fixture under a ``data`` directory).

    Raises
    ------
    LintError
        For an argument that is neither a file nor a directory.
    """
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            files.append(path)
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                relative = candidate.relative_to(path)
                if any(
                    part in SKIPPED_DIRS or part.startswith(".")
                    for part in relative.parts[:-1]
                ):
                    continue
                files.append(candidate)
        else:
            raise LintError(f"no such file or directory: {path}")
    return sorted(set(files))


def lint_paths(
    paths: Sequence["str | Path"],
    rules: Optional[Iterable[LintRule]] = None,
) -> List[Finding]:
    """Lint every python file under ``paths``; findings sorted globally."""
    findings: List[Finding] = []
    rule_list = None if rules is None else list(rules)
    for file_path in iter_python_files(paths):
        findings.extend(lint_file(file_path, rules=rule_list))
    return sorted(findings)


def rule_catalog() -> List[Dict[str, object]]:
    """JSON-ready summaries of every registered rule, sorted by id."""
    return [
        {
            "rule_id": rule.rule_id,
            "name": rule.name,
            "description": rule.description,
            "modules": list(rule.modules),
            "exclude": list(rule.exclude),
        }
        for rule_id, rule in sorted(LINT_RULES.items())
    ]
