"""Lint-rule registry: decorator registration, per-module scoping.

Mirrors :data:`repro.core.registry.DISCOVERY_ALGORITHMS`: each rule is a
checker class that registers itself with :func:`register_lint_rule`,
declaring the dotted-module prefixes it applies to.  Scoping by *module*
rather than by filesystem path keeps rules location-independent — the
same rule fires whether the analyzer was handed ``src/repro/core/x.py``,
an absolute path, or a fixture snippet with an explicit module override.

A checker class declares ``interests`` (the AST node classes it wants to
see) and a ``check(node, ctx)`` generator yielding ``(node, message,
hint)`` violations; the analyzer (:mod:`repro.lint.analysis`) walks each
file's AST exactly once, dispatching every node to the interested
in-scope rules.  Registration is idempotent per id (latest wins), so
tests can shadow and restore built-ins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple, Type

from ..exceptions import LintError

#: rule_id -> spec; populated at import time by :mod:`repro.lint.rules`.
LINT_RULES: Dict[str, "LintRule"] = {}


@dataclass(frozen=True)
class LintRule:
    """One registered lint rule.

    ``modules`` is a tuple of dotted-module prefixes the rule applies to
    (empty = every module); ``exclude`` lists dotted prefixes carved
    back out (the sanctioned homes of an otherwise-forbidden construct,
    e.g. ``repro.kernel.numpy_backend`` for the numpy-confinement rule).
    """

    rule_id: str
    name: str
    description: str
    checker: Type
    modules: Tuple[str, ...] = ()
    exclude: Tuple[str, ...] = field(default=())

    def applies_to(self, module: str) -> bool:
        """Whether this rule is in scope for dotted ``module``."""
        if any(_prefix_match(module, prefix) for prefix in self.exclude):
            return False
        if not self.modules:
            return True
        return any(_prefix_match(module, prefix) for prefix in self.modules)


def _prefix_match(module: str, prefix: str) -> bool:
    return module == prefix or module.startswith(prefix + ".")


def register_lint_rule(
    rule_id: str,
    name: str,
    description: str,
    modules: Tuple[str, ...] = (),
    exclude: Tuple[str, ...] = (),
) -> Callable[[Type], Type]:
    """Class decorator registering a lint checker.

    The decorated class must define ``interests`` (a tuple of ``ast``
    node classes) and a ``check(self, node, ctx)`` generator yielding
    ``(node, message, hint)`` triples; one instance is created per
    analyzed file, so checkers may keep per-file state.

    Raises
    ------
    LintError
        For an empty id/name or a checker without the required
        ``interests``/``check`` surface.
    """
    if not rule_id or not name:
        raise LintError("lint rules need a non-empty rule_id and name")

    def decorator(checker: Type) -> Type:
        if not hasattr(checker, "check") or not hasattr(checker, "interests"):
            raise LintError(
                f"lint rule {rule_id} checker {checker.__name__} must define "
                "'interests' and 'check(node, ctx)'"
            )
        LINT_RULES[rule_id] = LintRule(
            rule_id=rule_id,
            name=name,
            description=description,
            checker=checker,
            modules=tuple(modules),
            exclude=tuple(exclude),
        )
        return checker

    return decorator


def unregister_lint_rule(rule_id: str) -> None:
    """Remove a rule from the registry (test/plugin cleanup)."""
    LINT_RULES.pop(rule_id, None)


def rules_for_module(module: str) -> Tuple[LintRule, ...]:
    """Every registered rule in scope for dotted ``module``, by id."""
    return tuple(
        LINT_RULES[rule_id]
        for rule_id in sorted(LINT_RULES)
        if LINT_RULES[rule_id].applies_to(module)
    )
