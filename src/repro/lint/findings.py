"""The finding model: one rule violation at one source location.

A :class:`Finding` is plain data — the analyzer collects findings, the
suppression layer filters them, and the CLI renders them as text or
JSON.  Findings order by ``(path, line, rule_id)`` so reports are stable
across runs and across rule registration order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    path:
        Repo-relative posix path of the offending file.
    line:
        1-based source line of the offending node.
    rule_id:
        The registered rule id (``"REP104"``), or the reserved ids
        ``"REP000"`` (stale suppression) / ``"REP999"`` (unparseable
        file).
    message:
        What contract the code breaks, in one sentence.
    hint:
        How to fix it (may be empty).
    """

    path: str
    line: int
    rule_id: str
    message: str
    hint: str = ""

    def format(self) -> str:
        """The one-line text rendering: ``path:line: RULE message (hint)``."""
        text = f"{self.path}:{self.line}: {self.rule_id} {self.message}"
        if self.hint:
            text += f" ({self.hint})"
        return text

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready mapping with exactly the dataclass fields."""
        return {
            "path": self.path,
            "line": self.line,
            "rule_id": self.rule_id,
            "message": self.message,
            "hint": self.hint,
        }


#: Reserved id for a suppression that matches no current finding.
STALE_SUPPRESSION_ID = "REP000"

#: Reserved id for a file the analyzer cannot parse.
PARSE_ERROR_ID = "REP999"
