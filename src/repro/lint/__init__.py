"""Static invariant checker for the repro codebase.

One AST pass per file enforces the contracts the repo's correctness
story rests on — determinism of the scoring core, lazy confinement of
optional dependencies, the structured-error policy at public boundaries,
event-loop hygiene in the serve tier, and single-registry discipline for
algorithms, scorers and environment knobs.  See
``docs/static-analysis.md`` for the rule catalog and the history behind
each rule.

Programmatic surface::

    from repro.lint import lint_paths, lint_source, Finding

    findings = lint_paths(["src"])          # scoped rules, one pass/file
    for finding in findings:
        print(finding.format())

CLI: ``repro-preview lint [paths...]`` or ``python -m repro.lint``.
Grandfathered findings live in ``lint-suppressions.txt`` (stale entries
are themselves findings, so the file only ever shrinks).
"""

from .analysis import (
    lint_file,
    lint_paths,
    lint_source,
    module_name_for,
    rule_catalog,
)
from .findings import PARSE_ERROR_ID, STALE_SUPPRESSION_ID, Finding
from .registry import (
    LINT_RULES,
    LintRule,
    register_lint_rule,
    rules_for_module,
    unregister_lint_rule,
)
from .suppressions import (
    Suppression,
    apply_suppressions,
    load_suppressions,
    parse_suppressions,
)
from . import rules as _rules  # noqa: F401  (imports register the rules)
from .cli import main

__all__ = [
    "Finding",
    "LintRule",
    "LINT_RULES",
    "PARSE_ERROR_ID",
    "STALE_SUPPRESSION_ID",
    "Suppression",
    "apply_suppressions",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_suppressions",
    "main",
    "module_name_for",
    "parse_suppressions",
    "register_lint_rule",
    "rule_catalog",
    "rules_for_module",
    "unregister_lint_rule",
]
