"""Explicit suppressions: grandfathered findings, declared in one file.

The checker takes no inline ``# noqa``-style escapes — every accepted
violation lives in a single reviewed file (``lint-suppressions.txt`` at
the repo root), so the debt is enumerable and shrinks monotonically:
a suppression that no longer matches any finding is itself an error
(:data:`repro.lint.findings.STALE_SUPPRESSION_ID`), forcing dead
entries to be deleted the moment the underlying code is fixed.

File format, one suppression per line::

    # comment lines and blanks are ignored
    REP104 src/repro/legacy/scorer.py        # whole-file, any line
    REP107 src/repro/core/old.py:88          # exact line only

"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from ..exceptions import LintError
from .findings import STALE_SUPPRESSION_ID, Finding


@dataclass(frozen=True)
class Suppression:
    """One grandfathered finding: a rule id at a path (optionally a line)."""

    rule_id: str
    path: str
    line: Optional[int] = None
    source_line: int = 0

    def matches(self, finding: Finding) -> bool:
        """Whether this suppression covers ``finding``."""
        if finding.rule_id != self.rule_id:
            return False
        if Path(finding.path).as_posix() != self.path:
            return False
        return self.line is None or self.line == finding.line


def parse_suppressions(text: str, origin: str = "<suppressions>") -> List[Suppression]:
    """Parse suppressions-file ``text``.

    Raises
    ------
    LintError
        For a malformed line (wrong field count, non-integer line part).
    """
    suppressions: List[Suppression] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        if len(fields) != 2:
            raise LintError(
                f"{origin}:{lineno}: expected 'RULE_ID path[:line]', "
                f"got {raw.strip()!r}"
            )
        rule_id, target = fields
        path, sep, line_part = target.rpartition(":")
        if sep and line_part.isdigit():
            suppressions.append(
                Suppression(
                    rule_id=rule_id,
                    path=Path(path).as_posix(),
                    line=int(line_part),
                    source_line=lineno,
                )
            )
        else:
            suppressions.append(
                Suppression(
                    rule_id=rule_id,
                    path=Path(target).as_posix(),
                    source_line=lineno,
                )
            )
    return suppressions


def load_suppressions(path: "str | Path") -> List[Suppression]:
    """Read and parse a suppressions file; missing file means none.

    Raises
    ------
    LintError
        When the file exists but cannot be read or parsed.
    """
    file_path = Path(path)
    if not file_path.exists():
        return []
    try:
        text = file_path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        raise LintError(f"cannot read suppressions {file_path}: {exc}") from exc
    return parse_suppressions(text, origin=file_path.as_posix())


def apply_suppressions(
    findings: Sequence[Finding],
    suppressions: Sequence[Suppression],
    origin: str = "lint-suppressions.txt",
) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into (active, suppressed), flagging stale entries.

    Returns a pair: the findings that survive suppression — including
    one synthesized :data:`STALE_SUPPRESSION_ID` finding per suppression
    that matched nothing — and the findings that were suppressed.
    """
    active: List[Finding] = []
    suppressed: List[Finding] = []
    used = [False] * len(suppressions)
    for finding in findings:
        hit = False
        for index, suppression in enumerate(suppressions):
            if suppression.matches(finding):
                used[index] = True
                hit = True
        (suppressed if hit else active).append(finding)
    for index, suppression in enumerate(suppressions):
        if used[index]:
            continue
        target = suppression.path
        if suppression.line is not None:
            target += f":{suppression.line}"
        active.append(
            Finding(
                path=origin,
                line=suppression.source_line,
                rule_id=STALE_SUPPRESSION_ID,
                message=(
                    f"stale suppression: {suppression.rule_id} {target} "
                    "matches no current finding"
                ),
                hint="delete the line; the underlying issue is fixed",
            )
        )
    return sorted(active), sorted(suppressed)
