"""The project-specific rules: the repo's contracts, statically enforced.

Each rule encodes an invariant the codebase already documents but until
now only enforced through scattered subprocess guards and review
attention (see ``docs/static-analysis.md`` for the catalog, the PR that
motivated each rule, and the fix recipes).  Rules are deliberately
*syntactic*: they flag the constructs that can break a contract, not
every semantic path that might — a static pass that needs no type
inference stays fast, predictable, and explainable in one sentence.

Checker protocol (see :mod:`repro.lint.registry`): a class with an
``interests`` tuple of AST node types and a ``check(node, ctx)``
generator yielding ``(node, message, hint)`` violations; one instance
per file, dispatched by the single-pass walker in
:mod:`repro.lint.analysis`.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from .registry import register_lint_rule

Violation = Tuple[ast.AST, str, str]

#: Modules whose results must stay bit-identical across runs, backends
#: and worker counts — the scope of the determinism rules.
DETERMINISTIC_MODULES = ("repro.core", "repro.scoring", "repro.kernel")


def _call_name(node: ast.AST) -> str:
    """Dotted name of a call target / attribute chain, best effort."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif isinstance(node, ast.Call):
        return _call_name(node.func) + "()"
    return ".".join(reversed(parts))


def _mentions_score(node: ast.AST) -> bool:
    """Whether an expression's identifiers mark it as score-valued."""
    for sub in ast.walk(node):
        name = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
            name = sub.name
        if name is not None and "score" in name.lower():
            return True
    return False


def _is_inf_sentinel(node: ast.AST) -> bool:
    """``float("inf")`` / ``float("-inf")`` / ``math.inf`` expressions.

    Comparing a score against an infinity *sentinel* is exact by
    construction (the sentinel is assigned, never computed), so the
    float-discipline rule exempts it.
    """
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        node = node.operand
    if (
        isinstance(node, ast.Call)
        and _call_name(node.func) == "float"
        and len(node.args) == 1
        and isinstance(node.args[0], ast.Constant)
        and isinstance(node.args[0].value, str)
        and "inf" in node.args[0].value.lower()
    ):
        return True
    return _call_name(node) in ("math.inf", "math.nan")


def _is_hex_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "hex"
    )


@register_lint_rule(
    "REP101",
    "optional-import-confinement",
    "numpy imports only inside repro.kernel.numpy_backend; multiprocessing "
    "never at module top level outside repro.parallel",
    modules=("repro",),
)
class OptionalImportConfinement:
    """Optional/heavy dependencies stay behind their lazy boundaries.

    ``repro.kernel.numpy_backend`` is itself imported lazily (only when
    the numpy backend is selected), so *any* numpy import elsewhere in
    the library would silently break the stdlib-only install path and
    the ``REPRO_KERNEL=python`` bit-identity leg.  ``multiprocessing``
    at module top level would start the machinery on plain imports —
    the serial path must never pay for (or fork under) a pool it did
    not ask for.
    """

    interests = (ast.Import, ast.ImportFrom)

    NUMPY_HOME = "repro.kernel.numpy_backend"
    MP_HOME = "repro.parallel"

    def check(self, node: ast.AST, ctx) -> Iterator[Violation]:
        """Flag numpy / top-level multiprocessing imports out of bounds."""
        roots = []
        if isinstance(node, ast.Import):
            roots = [alias.name.split(".")[0] for alias in node.names]
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            roots = [node.module.split(".")[0]]
        if "numpy" in roots and ctx.module != self.NUMPY_HOME:
            yield (
                node,
                "numpy must only be imported by repro.kernel.numpy_backend",
                "route array work through the kernel backend interface",
            )
        in_parallel = ctx.module == self.MP_HOME or ctx.module.startswith(
            self.MP_HOME + "."
        )
        if "multiprocessing" in roots and ctx.at_module_level() and not in_parallel:
            yield (
                node,
                "multiprocessing imported at module top level outside "
                "repro.parallel",
                "import it lazily inside the function that starts workers",
            )


@register_lint_rule(
    "REP102",
    "no-unordered-iteration",
    "no iteration over bare set/frozenset expressions in deterministic "
    "modules (scoring must not depend on hash order)",
    modules=DETERMINISTIC_MODULES,
)
class NoUnorderedIteration:
    """Bit-identical scoring forbids hash-order-dependent loops.

    Iterating a set directly is fine when the loop only *accumulates*
    order-independent state — but that is exactly the property reviews
    keep re-proving, so the deterministic core bans the construct
    outright: materialize an order first (``sorted(...)`` or an
    insertion-ordered list/dict).
    """

    interests = (
        ast.For,
        ast.comprehension,
    )

    def check(self, node: ast.AST, ctx) -> Iterator[Violation]:
        """Flag for/comprehension iteration over bare set expressions."""
        iterable = node.iter
        for bad, kind in (
            (ast.Set, "a set literal"),
            (ast.SetComp, "a set comprehension"),
        ):
            if isinstance(iterable, bad):
                yield (
                    iterable,
                    f"iteration over {kind} is hash-order dependent",
                    "materialize a deterministic order first (sorted(...))",
                )
                return
        if isinstance(iterable, ast.Call) and _call_name(iterable.func) in (
            "set",
            "frozenset",
        ):
            yield (
                iterable,
                f"iteration over a bare {_call_name(iterable.func)}(...) is "
                "hash-order dependent",
                "materialize a deterministic order first (sorted(...))",
            )


@register_lint_rule(
    "REP103",
    "no-wall-clock",
    "no wall-clock, unseeded randomness, or uuid calls in deterministic "
    "modules (same inputs must give bit-identical outputs)",
    modules=DETERMINISTIC_MODULES,
)
class NoWallClock:
    """Scoring results must be a pure function of their inputs.

    ``random.Random(seed)`` with an explicit seed is allowed — seeded
    generators are how the repo *makes* randomness deterministic; the
    module-level ``random.*`` functions (process-global state) and every
    clock read are not.
    """

    interests = (ast.Call,)

    FORBIDDEN = frozenset(
        {
            "time.time",
            "time.time_ns",
            "datetime.now",
            "datetime.utcnow",
            "datetime.today",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "uuid.uuid1",
            "uuid.uuid4",
            "os.urandom",
        }
    )

    def check(self, node: ast.Call, ctx) -> Iterator[Violation]:
        """Flag clock reads and unseeded randomness."""
        name = _call_name(node.func)
        if name in self.FORBIDDEN or name.startswith("secrets."):
            yield (
                node,
                f"call to {name}() makes results time/process dependent",
                "thread the value in as an argument instead",
            )
        elif name.startswith("random."):
            if name == "random.Random" and node.args:
                return  # seeded generator: the sanctioned idiom
            yield (
                node,
                f"call to {name}() uses unseeded/global randomness",
                "use random.Random(seed) threaded from the caller",
            )


@register_lint_rule(
    "REP104",
    "float-equality",
    "no ==/!= on score-valued expressions outside the conformance "
    "oracles (exact float comparison belongs to float.hex diffs)",
    modules=("repro",),
    exclude=("repro.workload.oracle",),
)
class FloatEquality:
    """Score comparisons must be hex-exact or ordered, never ``==``.

    The conformance oracles compare via ``float.hex`` (both sides
    ``.hex()`` — allowed); sentinel checks against ``float("-inf")`` /
    ``math.inf`` are exact by construction (allowed).  Everything else
    is a latent "works until the fifth decimal" bug.
    """

    interests = (ast.Compare,)

    def check(self, node: ast.Compare, ctx) -> Iterator[Violation]:
        """Flag ==/!= with a score-valued operand, minus exemptions."""
        operands = [node.left] + list(node.comparators)
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[index], operands[index + 1]
            if not (_mentions_score(left) or _mentions_score(right)):
                continue
            if _is_inf_sentinel(left) or _is_inf_sentinel(right):
                continue
            if _is_hex_call(left) and _is_hex_call(right):
                continue
            yield (
                node,
                "==/!= on a score-valued expression",
                "compare float.hex() values, or an ordered <=/>= bound",
            )


@register_lint_rule(
    "REP105",
    "no-bare-except",
    "no bare `except:` anywhere (it swallows SystemExit and "
    "KeyboardInterrupt along with everything else)",
)
class NoBareExcept:
    """``except:`` catches even interpreter-shutdown signals."""

    interests = (ast.ExceptHandler,)

    def check(self, node: ast.ExceptHandler, ctx) -> Iterator[Violation]:
        """Flag handlers with no exception type."""
        if node.type is None:
            yield (
                node,
                "bare except: catches SystemExit/KeyboardInterrupt",
                "name the exceptions, or use `except Exception` and re-raise",
            )


@register_lint_rule(
    "REP106",
    "broad-except-swallow",
    "an `except Exception`/`except BaseException` handler must contain "
    "a raise (re-raise, or wrap into a ReproError subclass)",
    modules=("repro", "tools", "benchmarks", "examples"),
)
class BroadExceptSwallow:
    """Broad handlers may translate errors, never absorb them.

    The library's error contract (public entry points fail with
    :class:`~repro.exceptions.ReproError` subclasses) survives a broad
    catch only when the handler *raises* — either re-raising after
    cleanup/logging or wrapping into a structured error.  PR 5 shipped
    exactly this bug class: a raw ``TimeoutError`` leaking from
    ``ServeClient`` through a handler that forgot to wrap.
    """

    interests = (ast.ExceptHandler,)

    BROAD = frozenset({"Exception", "BaseException"})

    def _is_broad(self, annotation: ast.AST) -> bool:
        if isinstance(annotation, ast.Tuple):
            return any(self._is_broad(elt) for elt in annotation.elts)
        return _call_name(annotation) in self.BROAD

    def check(self, node: ast.ExceptHandler, ctx) -> Iterator[Violation]:
        """Flag broad handlers whose body never raises."""
        if node.type is None or not self._is_broad(node.type):
            return
        for sub in node.body:
            for stmt in ast.walk(sub):
                if isinstance(stmt, ast.Raise):
                    return
        yield (
            node,
            "except Exception handler swallows without re-raise/wrap",
            "re-raise after cleanup, or `raise ReproError(...) from exc`",
        )


@register_lint_rule(
    "REP107",
    "public-raise-policy",
    "public repro.* code raises only ReproError subclasses "
    "(callers catch one base class at API boundaries)",
    modules=("repro",),
)
class PublicRaisePolicy:
    """The exception hierarchy is part of the public API.

    ``raise ValueError(...)`` from a public entry point forces callers
    to guess which stdlib types a library call can leak.  Private
    helpers (an ``_underscored`` def/class anywhere on the enclosing
    stack) may use builtins freely; ``NotImplementedError`` stays legal
    everywhere (abstract-method stubs).
    """

    interests = (ast.Raise,)

    FORBIDDEN = frozenset(
        {
            "ValueError",
            "TypeError",
            "KeyError",
            "IndexError",
            "RuntimeError",
            "AttributeError",
            "Exception",
            "BaseException",
            "ArithmeticError",
            "ZeroDivisionError",
            "LookupError",
            "AssertionError",
            "StopIteration",
        }
    )

    def check(self, node: ast.Raise, ctx) -> Iterator[Violation]:
        """Flag builtin-exception raises on the public surface."""
        if node.exc is None or not ctx.in_public_api():
            return
        target = node.exc
        if isinstance(target, ast.Call):
            target = target.func
        name = _call_name(target)
        if name in self.FORBIDDEN:
            yield (
                node,
                f"public API raises builtin {name}",
                "raise a ReproError subclass from repro.exceptions instead",
            )


@register_lint_rule(
    "REP108",
    "async-no-blocking",
    "no blocking calls (time.sleep, subprocess, sync sockets, sync HTTP) "
    "inside `async def` bodies",
    modules=("repro",),
)
class AsyncNoBlocking:
    """One blocking call inside ``async def`` stalls every connection.

    The serve tier runs a single event loop; blocking work belongs on
    the per-host worker thread (a nested synchronous ``def`` handed to
    the executor — which this rule deliberately does not descend into).
    """

    interests = (ast.Call,)

    BLOCKING_PREFIXES = ("subprocess.", "socket.", "urllib.", "requests.")
    BLOCKING_CALLS = frozenset(
        {
            "time.sleep",
            "os.system",
            "os.popen",
            "os.waitpid",
            "input",
        }
    )

    def check(self, node: ast.Call, ctx) -> Iterator[Violation]:
        """Flag known-blocking calls whose innermost scope is async."""
        if not ctx.in_async_function():
            return
        name = _call_name(node.func)
        if name in self.BLOCKING_CALLS or any(
            name.startswith(prefix) for prefix in self.BLOCKING_PREFIXES
        ):
            yield (
                node,
                f"blocking call {name}() inside async def",
                "await an async equivalent, or run it on the worker thread",
            )


@register_lint_rule(
    "REP109",
    "serve-worker-thread",
    "engine/graph method calls inside repro.serve async code go through "
    "the worker-thread helper, never straight from the event loop",
    modules=("repro.serve",),
)
class ServeWorkerThread:
    """Engine caches are single-threaded by construction — keep them so.

    Inside an ``async def``, a direct ``self.engine.run(...)`` /
    ``self.graph.add_entity(...)`` call would race the worker thread
    every other computation runs on.  The sanctioned shape is a nested
    synchronous closure handed to ``EngineHost._on_worker`` (the rule
    does not descend into nested sync defs, so those closures stay
    legal).  Attribute *reads* (``self.graph.generation``) stay legal
    too — the documented consistent-snapshot idiom.
    """

    interests = (ast.Call,)

    GUARDED = ("engine", "graph")

    def check(self, node: ast.Call, ctx) -> Iterator[Violation]:
        """Flag self.engine./self.graph. method calls in async defs."""
        if not ctx.in_async_function():
            return
        name = _call_name(node.func)
        parts = name.split(".")
        if len(parts) >= 3 and parts[0] == "self" and parts[1] in self.GUARDED:
            yield (
                node,
                f"direct {'.'.join(parts[:2])} method call on the event loop",
                "wrap it in a sync closure and await _on_worker(closure)",
            )


@register_lint_rule(
    "REP110",
    "env-var-registry",
    "every REPRO_* environment read goes through repro.config "
    "(the declared-knob registry)",
    exclude=("repro.config",),
)
class EnvVarRegistry:
    """All runtime knobs are declared in one place.

    A raw ``os.environ.get("REPRO_X")`` is invisible to docs, to
    ``repro.config.knob_catalog`` and to operators; reads must go
    through the typed accessors so the knob set stays enumerable.
    Writes (test ``monkeypatch.setenv``, subprocess env dicts) are not
    reads and stay legal.  The checker keeps per-file state: simple
    module-level ``ENV_X = "REPRO_..."`` constants are tracked, so a
    read through such a constant is caught too — checkers are
    instantiated once per file precisely to allow this.
    """

    interests = (ast.Call, ast.Subscript, ast.Assign)

    READERS = frozenset({"os.environ.get", "os.getenv", "environ.get"})

    def __init__(self) -> None:
        self._constants: dict = {}

    def _repro_name(self, node: ast.AST) -> str:
        """The REPRO_* variable an expression names, or ``""``."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            value = node.value
        elif isinstance(node, ast.Name):
            value = self._constants.get(node.id, "")
        else:
            return ""
        return value if value.startswith("REPRO_") else ""

    def check(self, node: ast.AST, ctx) -> Iterator[Violation]:
        """Flag REPRO_* reads; record module-level string constants."""
        if isinstance(node, ast.Assign):
            if (
                ctx.at_module_level()
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self._constants[target.id] = node.value.value
            return
        if isinstance(node, ast.Call):
            if _call_name(node.func) in self.READERS and node.args:
                var = self._repro_name(node.args[0])
                if var:
                    yield (
                        node,
                        f"raw environment read of {var}",
                        "use the typed accessors in repro.config",
                    )
        elif isinstance(node, ast.Subscript):
            if isinstance(node.ctx, ast.Load) and _call_name(node.value) in (
                "os.environ",
                "environ",
            ):
                var = self._repro_name(node.slice)
                if var:
                    yield (
                        node,
                        f"raw environment read of {var}",
                        "use the typed accessors in repro.config",
                    )


@register_lint_rule(
    "REP111",
    "registry-discipline",
    "algorithm/scorer/rule registries are mutated only through their "
    "sanctioned decorators, never by direct subscript/update",
    modules=("repro",),
    exclude=("repro.core.registry", "repro.scoring.base", "repro.lint.registry"),
)
class RegistryDiscipline:
    """Registries are written through decorators, read everywhere.

    Direct ``DISCOVERY_ALGORITHMS[name] = ...`` bypasses the validation
    the decorators perform (shape checking, non-empty names) and hides
    registrations from grep.  Each registry's defining module is
    excluded — that is where the decorator itself writes.
    """

    interests = (ast.Subscript, ast.Call, ast.Delete)

    REGISTRIES = frozenset(
        {
            "DISCOVERY_ALGORITHMS",
            "KEY_SCORERS",
            "NONKEY_SCORERS",
            "LINT_RULES",
        }
    )
    MUTATORS = frozenset({"update", "setdefault", "pop", "clear"})

    def _registry_name(self, node: ast.AST) -> str:
        name = _call_name(node)
        return name.split(".")[-1] if name else ""

    def check(self, node: ast.AST, ctx) -> Iterator[Violation]:
        """Flag subscript/del/mutator-method writes to the registries."""
        if isinstance(node, ast.Subscript):
            if isinstance(node.ctx, (ast.Store, ast.Del)) and (
                self._registry_name(node.value) in self.REGISTRIES
            ):
                yield (
                    node,
                    "direct mutation of registry "
                    f"{self._registry_name(node.value)}",
                    "register through the sanctioned decorator instead",
                )
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in self.MUTATORS
                and self._registry_name(func.value) in self.REGISTRIES
            ):
                yield (
                    node,
                    f"registry {self._registry_name(func.value)} mutated via "
                    f".{func.attr}()",
                    "register through the sanctioned decorator instead",
                )


@register_lint_rule(
    "REP112",
    "public-docstrings",
    "exported public symbols (module-level defs/classes and public "
    "methods of public classes) carry docstrings",
    modules=("repro",),
)
class PublicDocstrings:
    """The docs tree resolves ``file:symbol`` references; keep them real.

    Dunder methods other than ``__init__`` are exempt (their contracts
    are the language's); private names are exempt; ``__init__`` is
    exempt when its class is documented (the class docstring carries the
    parameter table, the repo's established style).
    """

    interests = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)

    def check(self, node: ast.AST, ctx) -> Iterator[Violation]:
        """Flag undocumented public defs/classes at reportable depth."""
        name = node.name
        if name.startswith("_"):
            return
        if not ctx.in_public_api():
            return
        if ctx.function_stack:
            return  # nested defs are implementation detail
        if ast.get_docstring(node) is None:
            kind = "class" if isinstance(node, ast.ClassDef) else "function"
            yield (
                node,
                f"public {kind} {name} has no docstring",
                "document it; docs/ file:symbol references depend on these",
            )
