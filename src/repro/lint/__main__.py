"""``python -m repro.lint`` — same surface as ``repro-preview lint``."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
