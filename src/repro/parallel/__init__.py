"""Process-pool sharded evaluation of qualifying key subsets (Alg. 1/3).

The expensive step shared by the brute-force and Apriori algorithms is an
embarrassingly parallel loop: enumerate the qualifying k-subsets of key
attributes, run the Theorem-3 allocation (``ComputePreview``) on each,
keep the best.  Once the shared artifacts are hoisted (the
:class:`~repro.scoring.CandidatePool` of sorted, weighted Γτ arrays),
per-subset work has no cross-subset state and shards cleanly across
worker processes.

Design: the picklable scoring snapshot
--------------------------------------
Workers never see the entity graph, the schema graph or the scoring
context — none of those need to cross the pipe, and some are expensive
to pickle.  Instead the parent derives a :class:`ScoringSnapshot` from
the candidate pool: a type-index map plus the flat tuples of
``S(τ) × Sτ(γ)`` merge scores, which is *exactly* the surface
:func:`~repro.core.candidates.build_allocation_profile` reads.  The
snapshot duck-types that surface, so workers run the very same
allocation code the serial path runs — float accumulation happens in the
same order on the same values, making per-subset scores bit-identical to
a serial run, not merely approximately equal.

Each worker returns only its shard's best ``(score, subset_index)`` (or
compact profile payloads, for the engine's sweep prewarm); the parent
reduces with the exact serial tie-break — the *lowest* subset index wins
among equal scores, matching the ``score > best_score`` strict
comparison of the serial loops — and materializes the winning preview
locally against the real candidate pool.  Results are therefore
bit-identical to ``apriori_discover`` / ``brute_force_discover`` at
``jobs=1``, which the property tests in ``tests/test_parallel.py``
assert for all four registered algorithms.

``jobs=1`` is a true serial fallback: the shard functions run inline and
:mod:`multiprocessing` is never imported.  ``jobs=0`` resolves to the
machine's CPU count.
"""

from .executor import ShardedExecutor, resolve_jobs
from .snapshot import MappedScoringSnapshot, ScoringSnapshot, make_snapshot

__all__ = [
    "MappedScoringSnapshot",
    "ScoringSnapshot",
    "ShardedExecutor",
    "make_snapshot",
    "resolve_jobs",
]
