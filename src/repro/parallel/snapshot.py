"""The picklable scoring snapshot shipped to worker processes.

A :class:`ScoringSnapshot` is the smallest projection of a
:class:`~repro.scoring.CandidatePool` that still lets a worker run the
Theorem-3 merge: the ``TypeId -> type index`` map and the per-type flat
tuples of weighted merge scores ``S(τ) × Sτ(γ)``.  No entity graph,
schema graph or attribute objects cross the pipe — key subsets travel as
tuples of ``TypeId`` strings and scores as tuples of floats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

from ..model.ids import TypeId
from ..scoring.candidate_pool import CandidatePool


@dataclass(frozen=True)
class ScoringSnapshot:
    """Flat, picklable view of one candidate pool's merge scores.

    The snapshot duck-types the exact :class:`CandidatePool` surface that
    :func:`~repro.core.candidates.build_allocation_profile` reads —
    ``index``, ``weighted`` and ``attrs`` — so workers execute the very
    allocation code the serial path executes and accumulate floats in the
    identical order.  ``attrs`` is aliased to the weighted rows: the
    allocation only tests it for per-type emptiness and never dereferences
    an attribute object, and the pool builds both rows from the same
    ranked list, so lengths and truthiness agree by construction.
    Materializing a :class:`~repro.core.preview.Preview` needs the real
    pool and stays in the parent process.
    """

    index: Dict[TypeId, int]
    weighted: Tuple[Tuple[float, ...], ...]

    @property
    def attrs(self) -> Tuple[Tuple[float, ...], ...]:
        """Emptiness-equivalent stand-in for ``CandidatePool.attrs``."""
        return self.weighted

    @classmethod
    def from_pool(cls, pool: CandidatePool) -> "ScoringSnapshot":
        """Project ``pool`` into a fresh snapshot (full re-projection).

        Returns a snapshot whose ``weighted`` rows alias the pool's
        immutable tuples — cheap to build, cheap to pickle.
        """
        return cls(index=dict(pool.index), weighted=pool.weighted)

    def refresh(
        self, pool: CandidatePool, dirty_types: Iterable[TypeId]
    ) -> "ScoringSnapshot":
        """A new snapshot with only the dirty types' rows re-projected.

        The delta-maintenance hook that keeps a long-lived
        :class:`~repro.parallel.ShardedExecutor` warm across mutations:
        instead of re-projecting (and later re-pickling) every row,
        untouched rows *share* their float tuples with this snapshot —
        only dirty-type payloads are taken from the patched ``pool``.
        Falls back to :meth:`from_pool` when the pool's type universe
        differs (a structural mutation rebuilt it from scratch).
        """
        if pool.index != self.index:
            return self.from_pool(pool)
        rows = list(self.weighted)
        changed = False
        for type_name in dirty_types:
            i = self.index.get(type_name)
            if i is None:  # unknown dirty type: universe changed after all
                return self.from_pool(pool)
            rows[i] = pool.weighted[i]
            changed = True
        if not changed:
            return self
        return ScoringSnapshot(index=self.index, weighted=tuple(rows))
