"""The picklable scoring snapshot shipped to worker processes.

A :class:`ScoringSnapshot` is the smallest projection of a
:class:`~repro.scoring.CandidatePool` that still lets a worker run the
Theorem-3 merge: the ``TypeId -> type index`` map and the per-type flat
tuples of weighted merge scores ``S(τ) × Sτ(γ)``.  No entity graph,
schema graph or attribute objects cross the pipe — key subsets travel as
tuples of ``TypeId`` strings and scores as tuples of floats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..model.ids import TypeId
from ..scoring.candidate_pool import CandidatePool


@dataclass(frozen=True)
class ScoringSnapshot:
    """Flat, picklable view of one candidate pool's merge scores.

    The snapshot duck-types the exact :class:`CandidatePool` surface that
    :func:`~repro.core.candidates.build_allocation_profile` reads —
    ``index``, ``weighted`` and ``attrs`` — so workers execute the very
    allocation code the serial path executes and accumulate floats in the
    identical order.  ``attrs`` is aliased to the weighted rows: the
    allocation only tests it for per-type emptiness and never dereferences
    an attribute object, and the pool builds both rows from the same
    ranked list, so lengths and truthiness agree by construction.
    Materializing a :class:`~repro.core.preview.Preview` needs the real
    pool and stays in the parent process.
    """

    index: Dict[TypeId, int]
    weighted: Tuple[Tuple[float, ...], ...]

    @property
    def attrs(self) -> Tuple[Tuple[float, ...], ...]:
        """Emptiness-equivalent stand-in for ``CandidatePool.attrs``."""
        return self.weighted

    @classmethod
    def from_pool(cls, pool: CandidatePool) -> "ScoringSnapshot":
        return cls(index=dict(pool.index), weighted=pool.weighted)
