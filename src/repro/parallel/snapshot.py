"""The picklable scoring snapshot shipped to worker processes.

A :class:`ScoringSnapshot` is the smallest projection of a
:class:`~repro.scoring.CandidatePool` that still lets a worker run the
Theorem-3 merge: the ``TypeId -> type index`` map and the per-type flat
tuples of weighted merge scores ``S(τ) × Sτ(γ)``.  No entity graph,
schema graph or attribute objects cross the pipe — key subsets travel as
tuples of ``TypeId`` strings and scores as tuples of floats.

:class:`MappedScoringSnapshot` is the zero-copy variant: the weighted
rows live in one memory-mapped float64 scratch file and cross the pipe
as a path plus row lengths, so pickling costs bytes instead of
megabytes and every worker shares the parent's page cache.
:func:`make_snapshot` picks between the two per the ``REPRO_SNAPSHOT``
knob (:func:`repro.config.snapshot_transport`).
"""

from __future__ import annotations

import mmap
import os
import struct
import tempfile
import weakref
from dataclasses import dataclass
from typing import Dict, Iterable, Sequence, Tuple

from .. import config
from ..exceptions import ConfigError
from ..model.ids import TypeId
from ..scoring.candidate_pool import CandidatePool


@dataclass(frozen=True)
class ScoringSnapshot:
    """Flat, picklable view of one candidate pool's merge scores.

    The snapshot duck-types the exact :class:`CandidatePool` surface that
    :func:`~repro.core.candidates.build_allocation_profile` reads —
    ``index``, ``weighted`` and ``attrs`` — so workers execute the very
    allocation code the serial path executes and accumulate floats in the
    identical order.  ``attrs`` is aliased to the weighted rows: the
    allocation only tests it for per-type emptiness and never dereferences
    an attribute object, and the pool builds both rows from the same
    ranked list, so lengths and truthiness agree by construction.
    Materializing a :class:`~repro.core.preview.Preview` needs the real
    pool and stays in the parent process.
    """

    index: Dict[TypeId, int]
    weighted: Tuple[Tuple[float, ...], ...]

    @property
    def attrs(self) -> Tuple[Tuple[float, ...], ...]:
        """Emptiness-equivalent stand-in for ``CandidatePool.attrs``."""
        return self.weighted

    @classmethod
    def from_pool(cls, pool: CandidatePool) -> "ScoringSnapshot":
        """Project ``pool`` into a fresh snapshot (full re-projection).

        Returns a snapshot whose ``weighted`` rows alias the pool's
        immutable tuples — cheap to build, cheap to pickle.
        """
        return cls(index=dict(pool.index), weighted=pool.weighted)

    def refresh(
        self, pool: CandidatePool, dirty_types: Iterable[TypeId]
    ) -> "ScoringSnapshot":
        """A new snapshot with only the dirty types' rows re-projected.

        The delta-maintenance hook that keeps a long-lived
        :class:`~repro.parallel.ShardedExecutor` warm across mutations:
        instead of re-projecting (and later re-pickling) every row,
        untouched rows *share* their float tuples with this snapshot —
        only dirty-type payloads are taken from the patched ``pool``.
        Falls back to :meth:`from_pool` when the pool's type universe
        differs (a structural mutation rebuilt it from scratch).
        """
        if pool.index != self.index:
            return self.from_pool(pool)
        rows = list(self.weighted)
        changed = False
        for type_name in dirty_types:
            i = self.index.get(type_name)
            if i is None:  # unknown dirty type: universe changed after all
                return self.from_pool(pool)
            rows[i] = pool.weighted[i]
            changed = True
        if not changed:
            return self
        return ScoringSnapshot(index=self.index, weighted=tuple(rows))


def _row_bytes(row: Sequence[float]) -> bytes:
    """One weighted row as native-endian packed float64 (exact)."""
    return struct.pack(f"={len(row)}d", *row)


def _unlink_scratch(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:  # already gone (or never owned): nothing to free
        pass


class MappedScoringSnapshot:
    """A scoring snapshot whose rows are views over one mmap'd file.

    Duck-types the same :class:`CandidatePool` surface as
    :class:`ScoringSnapshot` (``index`` / ``weighted`` / ``attrs``), but
    each weighted row is a ``memoryview`` cast to float64 over a shared
    memory-mapped scratch file instead of a private tuple.  float64
    round-trips exactly through the file, and the kernel backends and
    :func:`~repro.core.candidates.build_allocation_profile` only read
    rows by index/slice/length, so scores stay bit-identical to the
    tuple-backed snapshot.

    Pickling (``__reduce__``) ships only ``(path, index, row lengths)``
    — a few hundred bytes however large the score arrays are — and the
    worker re-maps the same file, sharing the parent's page cache
    instead of receiving a copy over the pipe.  The planner's
    snapshot-cost probe (:meth:`~repro.plan.planner.Planner.observe_snapshot_cost`)
    pickles whatever snapshot it is handed, so it observes this
    near-zero shipping cost automatically.

    The creating process owns the scratch file and unlinks it when the
    snapshot is garbage-collected (or :meth:`close` is called); workers
    open read-only and never unlink.
    """

    __slots__ = (
        "index",
        "weighted",
        "_path",
        "_lengths",
        "_offsets",
        "_mmap",
        "_writable",
        "_finalizer",
        "__weakref__",
    )

    def __init__(
        self,
        path: str,
        index: Dict[TypeId, int],
        lengths: Tuple[int, ...],
        writable: bool = False,
    ) -> None:
        self.index = index
        self._path = path
        self._lengths = tuple(lengths)
        self._writable = writable
        offsets = []
        position = 0
        for length in self._lengths:
            offsets.append(position)
            position += 8 * length
        self._offsets = tuple(offsets)
        fd = os.open(path, os.O_RDWR if writable else os.O_RDONLY)
        try:
            access = mmap.ACCESS_WRITE if writable else mmap.ACCESS_READ
            self._mmap = mmap.mmap(fd, 0, access=access)
        finally:
            os.close(fd)
        view = memoryview(self._mmap)
        self.weighted = tuple(
            view[offset:offset + 8 * length].cast("d")
            for offset, length in zip(self._offsets, self._lengths)
        )
        self._finalizer = weakref.finalize(
            self, _unlink_scratch, path
        ) if writable else None

    @property
    def attrs(self) -> Tuple["memoryview", ...]:
        """Emptiness-equivalent stand-in for ``CandidatePool.attrs``."""
        return self.weighted

    @classmethod
    def from_pool(cls, pool: CandidatePool) -> "MappedScoringSnapshot":
        """Project ``pool`` into a fresh mmap-backed snapshot.

        Raises
        ------
        OSError
            When the scratch file cannot be created or written
            (:func:`make_snapshot` turns this into a fallback or a
            :class:`~repro.exceptions.ConfigError` per the knob).
        """
        fd, path = tempfile.mkstemp(prefix="repro-snapshot-", suffix=".f64")
        try:
            with os.fdopen(fd, "wb") as handle:
                total = 0
                for row in pool.weighted:
                    handle.write(_row_bytes(row))
                    total += 8 * len(row)
                if total == 0:  # mmap rejects empty files
                    handle.write(b"\x00" * 8)
            return cls(
                path,
                dict(pool.index),
                tuple(len(row) for row in pool.weighted),
                writable=True,
            )
        except BaseException:
            _unlink_scratch(path)
            raise

    def refresh(
        self, pool: CandidatePool, dirty_types: Iterable[TypeId]
    ) -> "MappedScoringSnapshot":
        """This snapshot with only the dirty types' rows re-projected.

        Same-shape dirty rows are patched *in place* in the mapped file
        (dispatches are synchronous, so no worker is mid-read), keeping
        the object identity — and therefore the planner's one-time cost
        measurement — stable across mutations.  A changed type universe
        or a row that changed length rebuilds from scratch via
        :func:`make_snapshot`.
        """
        if pool.index != self.index:
            return make_snapshot(pool)
        updates = []
        for type_name in dirty_types:
            i = self.index.get(type_name)
            if i is None:  # unknown dirty type: universe changed after all
                return make_snapshot(pool)
            row = pool.weighted[i]
            if len(row) != self._lengths[i]:
                return make_snapshot(pool)
            updates.append((i, row))
        if not updates:
            return self
        for i, row in updates:
            start = self._offsets[i]
            self._mmap[start:start + 8 * len(row)] = _row_bytes(row)
        return self

    def close(self) -> None:
        """Unlink the scratch file now (owner only; idempotent)."""
        if self._finalizer is not None:
            self._finalizer()

    def __reduce__(self):
        return (
            MappedScoringSnapshot,
            (self._path, self.index, self._lengths, False),
        )


def make_snapshot(pool: CandidatePool):
    """A worker-pool snapshot of ``pool`` per the ``REPRO_SNAPSHOT`` knob.

    ``mmap`` and ``auto`` build a :class:`MappedScoringSnapshot`;
    ``pickle`` (and ``auto`` when the scratch file cannot be created)
    builds a plain :class:`ScoringSnapshot`.  Both duck-type the same
    pool surface and produce bit-identical scores.

    Raises
    ------
    ConfigError
        When the transport is forced to ``mmap`` and the scratch file
        cannot be created, or the knob names an unknown transport.
    """
    transport = config.snapshot_transport()
    if transport == "pickle":
        return ScoringSnapshot.from_pool(pool)
    try:
        return MappedScoringSnapshot.from_pool(pool)
    except OSError as exc:
        if transport == "mmap":
            raise ConfigError(
                f"{config.SNAPSHOT.name}=mmap but the mapped snapshot "
                f"could not be created: {exc}"
            ) from exc
        return ScoringSnapshot.from_pool(pool)
