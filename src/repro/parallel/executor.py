"""Process-pool executor for sharded key-subset evaluation.

:class:`ShardedExecutor` chunks a qualifying-subset list into contiguous
shards, ships each shard (plus one :class:`ScoringSnapshot`) to a worker
process, and reduces the per-shard answers with the exact serial
tie-break order.  Two shard operations cover both call sites:

* :meth:`ShardedExecutor.best_allocation` — score every subset at one
  attribute budget, return the global best ``(score, subset_index)``;
  used by ``apriori_discover``/``brute_force_discover``.
* :meth:`ShardedExecutor.build_profiles` — build the full allocation
  profile payload (pick sequence + cumulative scores) per subset; used
  by the engine's sweep prewarm so every budget along a sweep reads the
  sharded result.

``jobs=1`` (and degenerate shard counts) run the shard functions inline —
:mod:`multiprocessing` is imported lazily and only on a genuinely
parallel call, so serial users never pay for (or depend on) it.
"""

from __future__ import annotations

import os
import time
from typing import List, Optional, Sequence, Tuple

from .. import kernel, plan
from ..core.candidates import build_allocation_profile
from ..exceptions import DiscoveryError
from ..model.ids import TypeId
from .snapshot import ScoringSnapshot

#: (picks, cum, cap) — the picklable payload of one AllocationProfile,
#: or None for an infeasible subset (some key with an empty Γτ).
ProfilePayload = Optional[Tuple[List[Tuple[int, int]], List[float], Optional[int]]]

#: One sweep-prewarm profile group: (subsets, cap).  Groups keep their
#: own caps because different sweep points trim profiles differently.
ProfileGroup = Tuple[Sequence[Tuple[TypeId, ...]], Optional[int]]


def resolve_jobs(jobs: int) -> int:
    """Normalize a user-facing ``jobs`` value (0 = all CPU cores).

    Returns the effective worker count (always >= 1); raises
    :class:`~repro.exceptions.DiscoveryError` for negative values.
    """
    if jobs < 0:
        raise DiscoveryError(f"jobs must be non-negative, got {jobs}")
    if jobs == 0:
        try:
            return len(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - non-Linux
            return os.cpu_count() or 1
    return jobs


def _score_shard(payload) -> Tuple[Optional[Tuple[float, int]], float]:
    """``(best, seconds)`` for one shard; ``best`` may be None.

    ``best`` is the shard's winning ``(score, global_subset_index)``.
    The whole shard is one batched kernel call over the snapshot's
    columns — the backend name travels in the payload, so workers run
    the parent's backend under both ``fork`` and ``spawn``.  The kernel
    keeps the lowest-index subset among equal scores (and treats
    duplicate keys as infeasible), the same rules the serial discovery
    loops apply.  ``seconds`` is the worker-side compute time, shipped
    back so the parent's cost model learns the per-shard rate the
    adaptive shard sizing needs.
    """
    snapshot, start, subsets, extra_cap, backend_name = payload
    backend = kernel.get_backend(backend_name)
    began = time.perf_counter()
    best = backend.best_allocation(
        backend.lower(snapshot), subsets, extra_cap
    )
    elapsed = time.perf_counter() - began
    if best is None:
        return None, elapsed
    return (best[0], start + best[1]), elapsed


def _profile_shard(payload) -> List[ProfilePayload]:
    """Allocation-profile payloads for one shard, positionally aligned."""
    snapshot, _start, subsets, cap, _backend_name = payload
    results: List[ProfilePayload] = []
    for keys in subsets:
        profile = build_allocation_profile(snapshot, keys, cap=cap)
        if profile is None:
            results.append(None)
        else:
            results.append((profile.picks, profile.cum, profile.cap))
    return results


def _profile_groups_shard(payload) -> List[Tuple[int, List[ProfilePayload]]]:
    """Profile payloads for a *bin* of whole sweep groups.

    The payload carries ``(snapshot, [(group_index, subsets, cap), ...])``
    — several small sweep points batched into one worker task.  Groups
    are never split across bins, so each keeps its own cap and its
    payloads stay positionally aligned; the group index travels with
    the results for reassembly in the parent.
    """
    snapshot, groups = payload
    results: List[Tuple[int, List[ProfilePayload]]] = []
    for group_index, subsets, cap in groups:
        payloads: List[ProfilePayload] = []
        for keys in subsets:
            profile = build_allocation_profile(snapshot, keys, cap=cap)
            if profile is None:
                payloads.append(None)
            else:
                payloads.append((profile.picks, profile.cum, profile.cap))
        results.append((group_index, payloads))
    return results


class ShardedExecutor:
    """Shards subset evaluation across a reusable process pool.

    Parameters
    ----------
    jobs:
        Worker processes (0 = all CPU cores).  With ``jobs=1`` every
        operation runs inline in the calling process.
    start_method:
        Multiprocessing start method; None picks ``fork`` when the
        platform offers it (cheapest for one-shot CLI/bench runs).
        Long-lived multi-threaded processes — the serve layer — must
        pass ``"spawn"``: forking a process that already runs an event
        loop plus worker threads can clone held locks into the child
        and hang it.

    The pool is created lazily on the first parallel call and reused
    until :meth:`close` (the executor is a context manager), so a sweep
    amortizes worker startup across all of its groups and points.
    """

    def __init__(self, jobs: int = 1, start_method: Optional[str] = None) -> None:
        self.jobs = resolve_jobs(jobs)
        self._start_method = start_method
        self._pool = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "ShardedExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Terminate the worker pool (no-op for serial executors)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def _get_pool(self):
        if self._pool is None:
            # Imported here, not at module top: jobs=1 must stay a pure
            # serial fallback with no multiprocessing dependency.
            import multiprocessing

            method = self._start_method
            if method is None:
                method = (
                    "fork"
                    if "fork" in multiprocessing.get_all_start_methods()
                    else "spawn"
                )
            self._pool = multiprocessing.get_context(method).Pool(
                processes=self.jobs
            )
        return self._pool

    # ------------------------------------------------------------------
    # Sharding
    # ------------------------------------------------------------------
    def _payloads(
        self,
        snapshot: ScoringSnapshot,
        subsets: Sequence[Tuple[TypeId, ...]],
        cap: Optional[int],
    ) -> List[Tuple]:
        """Contiguous shards tagged with their global start index.

        Never produces an empty shard: the shard count is capped at the
        subset count, so every shard carries at least one subset (an
        empty ``subsets`` yields zero shards rather than dividing by
        zero — the public operations short-circuit before that, but the
        sharding itself is total).
        """
        if not subsets:
            return []
        backend_name = kernel.backend_name()
        payloads = []
        start = 0
        # Shard sizes come from the planner: min(jobs, n) equal chunks
        # under static/forced modes, the adaptive oversubscribed layout
        # under auto (see repro.plan.Planner.shard_layout).
        for size in plan.shard_layout(len(subsets), self.jobs):
            payloads.append(
                (
                    snapshot,
                    start,
                    list(subsets[start:start + size]),
                    cap,
                    backend_name,
                )
            )
            start += size
        return payloads

    def _map(self, fn, payloads: List[Tuple]) -> List:
        if self.jobs == 1 or len(payloads) == 1:
            return [fn(payload) for payload in payloads]
        return self._get_pool().map(fn, payloads)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def best_allocation(
        self,
        snapshot: ScoringSnapshot,
        subsets: Sequence[Tuple[TypeId, ...]],
        extra_cap: int,
    ) -> Optional[Tuple[float, int]]:
        """Globally best ``(score, subset_index)`` at one budget.

        The reduction keeps the first strict maximum over shards in
        index order, so the winner is the lowest-index subset among
        equal scores — bit-identical to the serial loops.
        """
        if not subsets:
            return None
        # Counted on the parent side: worker-process counters are
        # invisible here, and the inline jobs=1 path must not double
        # count (backends themselves never record).
        kernel.record_batch(len(subsets))
        payloads = self._payloads(snapshot, subsets, extra_cap)
        pooled = self.jobs > 1 and len(payloads) > 1
        backend_name = kernel.backend_name()
        if pooled:
            plan.observe_snapshot_cost(snapshot)
        began = time.perf_counter()
        shard_results = self._map(_score_shard, payloads)
        elapsed = time.perf_counter() - began
        best: Optional[Tuple[float, int]] = None
        for shard_best, _seconds in shard_results:
            if shard_best is None:
                continue
            if best is None or shard_best[0] > best[0]:
                best = shard_best
        if pooled:
            for payload, (_, shard_seconds) in zip(payloads, shard_results):
                plan.observe_shard(backend_name, len(payload[2]), shard_seconds)
            plan.observe_sharded(
                backend_name, len(subsets), elapsed, len(payloads)
            )
        else:
            plan.observe_serial(backend_name, len(subsets), elapsed)
        return best

    def build_profiles(
        self,
        snapshot: ScoringSnapshot,
        subsets: Sequence[Tuple[TypeId, ...]],
        cap: Optional[int],
    ) -> List[ProfilePayload]:
        """Per-subset allocation-profile payloads, positionally aligned."""
        if not subsets:
            return []
        payloads = self._payloads(snapshot, subsets, cap)
        pooled = self.jobs > 1 and len(payloads) > 1
        if pooled:
            plan.observe_snapshot_cost(snapshot)
        began = time.perf_counter()
        results: List[ProfilePayload] = []
        for shard in self._map(_profile_shard, payloads):
            results.extend(shard)
        elapsed = time.perf_counter() - began
        # Profile builds learn under their own signals: their per-subset
        # rate (full pick sequences) differs from batched scoring, and
        # mixing the two would corrupt both fits.
        signal = "profile_sharded" if pooled else "profile_serial"
        plan.get_planner().observe(
            signal, kernel.backend_name(), len(subsets), elapsed
        )
        return results

    def build_profile_groups(
        self,
        snapshot: ScoringSnapshot,
        groups: Sequence[ProfileGroup],
    ) -> List[List[ProfilePayload]]:
        """Profile payloads for several sweep groups in ONE dispatch.

        The sweep-point batching op: each group is a (subsets, cap)
        pair too small to justify its own pool dispatch, but together
        they amortize the snapshot shipping.  Whole groups are greedily
        bin-packed (largest first, into the lightest bin) across at
        most ``jobs`` worker tasks and dispatched in a single pool map;
        results come back positionally aligned with ``groups``.

        Group membership only moves work between processes — every
        profile is built by the same serial
        :func:`~repro.core.candidates.build_allocation_profile` call —
        so batching cannot change results.
        """
        if not groups:
            return []
        bins: List[List[Tuple[int, Sequence[Tuple[TypeId, ...]], Optional[int]]]] = [
            [] for _ in range(min(self.jobs, len(groups)))
        ]
        loads = [0] * len(bins)
        order = sorted(
            range(len(groups)), key=lambda i: len(groups[i][0]), reverse=True
        )
        for group_index in order:
            subsets, cap = groups[group_index]
            lightest = loads.index(min(loads))
            bins[lightest].append((group_index, list(subsets), cap))
            loads[lightest] += len(subsets)
        payloads = [(snapshot, bin_groups) for bin_groups in bins if bin_groups]
        pooled = self.jobs > 1 and len(payloads) > 1
        if pooled:
            plan.observe_snapshot_cost(snapshot)
        began = time.perf_counter()
        results: List[Optional[List[ProfilePayload]]] = [None] * len(groups)
        for bin_result in self._map(_profile_groups_shard, payloads):
            for group_index, group_payloads in bin_result:
                results[group_index] = group_payloads
        elapsed = time.perf_counter() - began
        total = sum(len(subsets) for subsets, _ in groups)
        signal = "profile_sharded" if pooled else "profile_serial"
        plan.get_planner().observe(
            signal, kernel.backend_name(), total, elapsed
        )
        return results
