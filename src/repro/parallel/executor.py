"""Process-pool executor for sharded key-subset evaluation.

:class:`ShardedExecutor` chunks a qualifying-subset list into contiguous
shards, ships each shard (plus one :class:`ScoringSnapshot`) to a worker
process, and reduces the per-shard answers with the exact serial
tie-break order.  Two shard operations cover both call sites:

* :meth:`ShardedExecutor.best_allocation` — score every subset at one
  attribute budget, return the global best ``(score, subset_index)``;
  used by ``apriori_discover``/``brute_force_discover``.
* :meth:`ShardedExecutor.build_profiles` — build the full allocation
  profile payload (pick sequence + cumulative scores) per subset; used
  by the engine's sweep prewarm so every budget along a sweep reads the
  sharded result.

``jobs=1`` (and degenerate shard counts) run the shard functions inline —
:mod:`multiprocessing` is imported lazily and only on a genuinely
parallel call, so serial users never pay for (or depend on) it.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple

from .. import kernel
from ..core.candidates import build_allocation_profile
from ..exceptions import DiscoveryError
from ..model.ids import TypeId
from .snapshot import ScoringSnapshot

#: (picks, cum, cap) — the picklable payload of one AllocationProfile,
#: or None for an infeasible subset (some key with an empty Γτ).
ProfilePayload = Optional[Tuple[List[Tuple[int, int]], List[float], Optional[int]]]


def resolve_jobs(jobs: int) -> int:
    """Normalize a user-facing ``jobs`` value (0 = all CPU cores).

    Returns the effective worker count (always >= 1); raises
    :class:`~repro.exceptions.DiscoveryError` for negative values.
    """
    if jobs < 0:
        raise DiscoveryError(f"jobs must be non-negative, got {jobs}")
    if jobs == 0:
        try:
            return len(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - non-Linux
            return os.cpu_count() or 1
    return jobs


def _score_shard(payload) -> Optional[Tuple[float, int]]:
    """Best ``(score, global_subset_index)`` within one shard, or None.

    The whole shard is one batched kernel call over the snapshot's
    columns — the backend name travels in the payload, so workers run
    the parent's backend under both ``fork`` and ``spawn``.  The kernel
    keeps the lowest-index subset among equal scores (and treats
    duplicate keys as infeasible), the same rules the serial discovery
    loops apply.
    """
    snapshot, start, subsets, extra_cap, backend_name = payload
    backend = kernel.get_backend(backend_name)
    best = backend.best_allocation(
        backend.lower(snapshot), subsets, extra_cap
    )
    if best is None:
        return None
    return best[0], start + best[1]


def _profile_shard(payload) -> List[ProfilePayload]:
    """Allocation-profile payloads for one shard, positionally aligned."""
    snapshot, _start, subsets, cap, _backend_name = payload
    results: List[ProfilePayload] = []
    for keys in subsets:
        profile = build_allocation_profile(snapshot, keys, cap=cap)
        if profile is None:
            results.append(None)
        else:
            results.append((profile.picks, profile.cum, profile.cap))
    return results


class ShardedExecutor:
    """Shards subset evaluation across a reusable process pool.

    Parameters
    ----------
    jobs:
        Worker processes (0 = all CPU cores).  With ``jobs=1`` every
        operation runs inline in the calling process.
    start_method:
        Multiprocessing start method; None picks ``fork`` when the
        platform offers it (cheapest for one-shot CLI/bench runs).
        Long-lived multi-threaded processes — the serve layer — must
        pass ``"spawn"``: forking a process that already runs an event
        loop plus worker threads can clone held locks into the child
        and hang it.

    The pool is created lazily on the first parallel call and reused
    until :meth:`close` (the executor is a context manager), so a sweep
    amortizes worker startup across all of its groups and points.
    """

    def __init__(self, jobs: int = 1, start_method: Optional[str] = None) -> None:
        self.jobs = resolve_jobs(jobs)
        self._start_method = start_method
        self._pool = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "ShardedExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Terminate the worker pool (no-op for serial executors)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def _get_pool(self):
        if self._pool is None:
            # Imported here, not at module top: jobs=1 must stay a pure
            # serial fallback with no multiprocessing dependency.
            import multiprocessing

            method = self._start_method
            if method is None:
                method = (
                    "fork"
                    if "fork" in multiprocessing.get_all_start_methods()
                    else "spawn"
                )
            self._pool = multiprocessing.get_context(method).Pool(
                processes=self.jobs
            )
        return self._pool

    # ------------------------------------------------------------------
    # Sharding
    # ------------------------------------------------------------------
    def _payloads(
        self,
        snapshot: ScoringSnapshot,
        subsets: Sequence[Tuple[TypeId, ...]],
        cap: Optional[int],
    ) -> List[Tuple]:
        """Contiguous shards tagged with their global start index.

        Never produces an empty shard: the shard count is capped at the
        subset count, so every shard carries at least one subset (an
        empty ``subsets`` yields zero shards rather than dividing by
        zero — the public operations short-circuit before that, but the
        sharding itself is total).
        """
        if not subsets:
            return []
        backend_name = kernel.backend_name()
        shards = min(self.jobs, len(subsets))
        base, remainder = divmod(len(subsets), shards)
        payloads = []
        start = 0
        for shard in range(shards):
            size = base + (1 if shard < remainder else 0)
            payloads.append(
                (
                    snapshot,
                    start,
                    list(subsets[start:start + size]),
                    cap,
                    backend_name,
                )
            )
            start += size
        return payloads

    def _map(self, fn, payloads: List[Tuple]) -> List:
        if self.jobs == 1 or len(payloads) == 1:
            return [fn(payload) for payload in payloads]
        return self._get_pool().map(fn, payloads)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def best_allocation(
        self,
        snapshot: ScoringSnapshot,
        subsets: Sequence[Tuple[TypeId, ...]],
        extra_cap: int,
    ) -> Optional[Tuple[float, int]]:
        """Globally best ``(score, subset_index)`` at one budget.

        The reduction keeps the first strict maximum over shards in
        index order, so the winner is the lowest-index subset among
        equal scores — bit-identical to the serial loops.
        """
        if not subsets:
            return None
        # Counted on the parent side: worker-process counters are
        # invisible here, and the inline jobs=1 path must not double
        # count (backends themselves never record).
        kernel.record_batch(len(subsets))
        best: Optional[Tuple[float, int]] = None
        for shard_best in self._map(
            _score_shard, self._payloads(snapshot, subsets, extra_cap)
        ):
            if shard_best is None:
                continue
            if best is None or shard_best[0] > best[0]:
                best = shard_best
        return best

    def build_profiles(
        self,
        snapshot: ScoringSnapshot,
        subsets: Sequence[Tuple[TypeId, ...]],
        cap: Optional[int],
    ) -> List[ProfilePayload]:
        """Per-subset allocation-profile payloads, positionally aligned."""
        if not subsets:
            return []
        results: List[ProfilePayload] = []
        for shard in self._map(
            _profile_shard, self._payloads(snapshot, subsets, cap)
        ):
            results.extend(shard)
        return results
