"""Packaging for the ``repro`` preview-table library.

``pip install -e .`` installs the package from ``src/`` and exposes the
``repro-preview`` console script — no ``PYTHONPATH=src`` workaround
needed.  Kept as a plain ``setup.py`` (no build-time dependencies beyond
setuptools) so editable installs succeed in offline environments.
"""

import os
import re

from setuptools import find_packages, setup


def read_version() -> str:
    here = os.path.dirname(os.path.abspath(__file__))
    init_path = os.path.join(here, "src", "repro", "__init__.py")
    with open(init_path, encoding="utf-8") as handle:
        match = re.search(r'^__version__ = "([^"]+)"', handle.read(), re.M)
    if not match:
        raise RuntimeError("cannot find __version__ in src/repro/__init__.py")
    return match.group(1)


setup(
    name="repro-preview-tables",
    version=read_version(),
    description=(
        'Reproduction of "Generating Preview Tables for Entity Graphs" '
        "(Yan et al., SIGMOD 2016)"
    ),
    author="paper-repo-growth",
    packages=find_packages(where="src"),
    package_dir={"": "src"},
    python_requires=">=3.9",
    entry_points={
        "console_scripts": [
            "repro-preview=repro.cli:main",
        ],
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.9",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Database",
    ],
)
