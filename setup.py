"""Compatibility shim: lets ``python setup.py develop`` work offline.

The canonical metadata lives in pyproject.toml; this file only exists so
editable installs succeed in environments without the ``wheel`` package.
"""
from setuptools import setup

setup()
